//! The discrete-event simulator: nodes, ports, events and the run loop.
//!
//! A [`Simulator`] owns a set of [`Node`]s connected by unidirectional
//! [`Link`]s. Nodes react to packet arrivals and timers
//! through a [`Ctx`] handle that lets them send packets out of their ports
//! and schedule further timers. Event ordering is total — ties on the
//! timestamp break on a *content-derived* [`EvKey`] (originating node plus
//! a per-node emission counter) — so every run is deterministic given the
//! seed **and independent of how the topology is sharded**.
//!
//! # Sharding
//!
//! Every node belongs to a *region* (default 0), assigned at
//! [`Simulator::add_node_in_region`] time. Regions are mapped onto `N`
//! shards (`shard = region % N`), each with its own timing wheel. With
//! `N == 1` the engine is exactly the classic single-threaded event loop;
//! with `N > 1` the shards run on a thread-per-shard pool synchronized by
//! conservative lookahead windows derived from the minimum propagation
//! delay of any link that crosses shards (see [`crate::shard`]). Because
//! every tie-breaking key, every RNG stream and every packet id is derived
//! from content (node identity + per-node counters) rather than from
//! global execution order, the observable results are byte-identical at
//! every shard count.
//!
//! The run loop is built for throughput: events live in a timing wheel
//! ([`crate::wheel`]) instead of a binary heap, links hang off a dense
//! per-node port table so `send` is two array indexes, the per-dispatch
//! action buffer is reused across events, and guard timers can be
//! cancelled ([`Ctx::cancel_timer`]) so dead expiries are dropped at the
//! queue instead of round-tripping through a node.

use crate::fault::{FaultPlan, NodeFaultPlan, NodeOutageSet};
use crate::link::{Link, LinkConfig, LinkStats};
use crate::packet::Packet;
use crate::time::{Duration, Instant};
use crate::wheel::TimerWheel;
use rand::RngCore;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Identifier of a node within a simulator.
pub type NodeId = usize;
/// Identifier of a port on a node. Ports are just small integers; each crate
/// defines its own conventions (e.g. "port 0 faces the eNodeB").
pub type PortId = usize;

/// Process-wide default shard count picked up by [`Simulator::new`]
/// (mirrors the bench runner's jobs knob; the `figures` CLI sets it from
/// `--shards N`).
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Set the default shard count for subsequently constructed simulators.
/// `None` restores the single-shard default.
pub fn set_default_shards(n: Option<usize>) {
    DEFAULT_SHARDS.store(n.unwrap_or(1).max(1), Ordering::SeqCst);
}

/// The current default shard count.
pub fn default_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::SeqCst).max(1)
}

/// Behaviour of a simulated network element.
///
/// Nodes are single-threaded state machines: the simulator calls exactly one
/// of these hooks at a time (each node lives on exactly one shard, and a
/// shard is driven by one thread). `Any` supertrait (plus Rust's dyn
/// upcasting) lets callers recover concrete node types after a run via
/// [`Simulator::node_ref`]; `Send` lets shards run on worker threads.
pub trait Node: Any + Send {
    /// A packet arrived on `port`.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet);

    /// A timer scheduled with [`Ctx::schedule_at`]/[`Ctx::schedule_in`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Crash-restart recovery hook: erase every piece of application-visible
    /// state, as if the process had been restarted from scratch. The engine
    /// invokes it when a
    /// [`NodeFaultKind::CrashRestart`](crate::fault::NodeFaultKind) outage
    /// ends, before the first post-restart event reaches the node. The
    /// default panics: a node type must opt in by defining what "empty"
    /// means, so that recovery is forced through the protocol rather than
    /// through conveniently preserved memory.
    fn on_restart(&mut self) {
        panic!("node does not support crash-restart (implement Node::on_restart)");
    }
}

/// Content-derived event tie-break key: the originating node (or
/// [`EvKey::EXTERNAL`] for harness injections) plus that origin's emission
/// counter. Two events can only tie on `(at, key)` if they are the same
/// event, and the key assigned to an event does not depend on the global
/// interleaving of other nodes' dispatches — which is what makes event
/// ordering identical at every shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EvKey {
    src: u32,
    ctr: u64,
}

impl EvKey {
    /// Source id used for events injected by the harness (outside any node
    /// dispatch). Sorts after all node-originated events at the same
    /// instant.
    pub const EXTERNAL: u32 = u32::MAX;

    /// Construct a key (exposed for the scheduler property tests).
    pub fn new(src: u32, ctr: u64) -> EvKey {
        EvKey { src, ctr }
    }
}

/// Handle to a cancellable timer (see [`Ctx::schedule_in_cancellable`]).
///
/// Generation-tagged: the handle names a slab slot plus the generation it
/// was armed in, so a handle left over from a completed or cancelled timer
/// can never affect a later timer that happens to reuse the slot. Slabs
/// are per-node, so handle values are themselves shard-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    slot: u32,
    gen: u32,
}

/// Generation slab backing [`TimerHandle`]s (one per node).
#[derive(Default)]
pub(crate) struct TimerSlab {
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl TimerSlab {
    /// Allocate a live handle.
    fn alloc(&mut self) -> TimerHandle {
        if let Some(slot) = self.free.pop() {
            TimerHandle {
                slot,
                gen: self.gens[slot as usize],
            }
        } else {
            self.gens.push(0);
            TimerHandle {
                slot: (self.gens.len() - 1) as u32,
                gen: 0,
            }
        }
    }

    /// Consume a handle: returns `true` (and frees the slot) iff it was
    /// still live. Used both by cancellation and by expiry.
    pub(crate) fn invalidate(&mut self, h: TimerHandle) -> bool {
        if self.gens[h.slot as usize] == h.gen {
            self.gens[h.slot as usize] = self.gens[h.slot as usize].wrapping_add(1);
            self.free.push(h.slot);
            true
        } else {
            false
        }
    }
}

/// Deferred side effects produced by a node during a hook invocation.
pub(crate) enum Action {
    Send {
        port: PortId,
        pkt: Packet,
    },
    Timer {
        at: Instant,
        token: u64,
        guard: Option<TimerHandle>,
    },
}

/// Per-node engine state: the node's private RNG stream, its event/packet
/// emission counters and its timer slab. All of it is keyed by node
/// identity (plus the master seed), never by global execution order, so it
/// evolves identically at every shard count.
pub(crate) struct NodeMeta {
    pub(crate) rng: ChaCha8Rng,
    pub(crate) ev_ctr: u64,
    pub(crate) pkt_ctr: u64,
    pub(crate) timers: TimerSlab,
    /// Lifecycle epoch, bumped at every crash-restart: timers carry the
    /// epoch they were armed in, and a stale epoch never fires (a restarted
    /// node has no timers).
    pub(crate) epoch: u32,
    /// Number of fault windows this node has fully passed through (lazy
    /// cursor into its [`NodeOutageSet`], advanced at dispatch time).
    pub(crate) fault_pos: u32,
}

impl NodeMeta {
    fn new(master_seed: u64, node: NodeId) -> NodeMeta {
        NodeMeta {
            rng: ChaCha8Rng::seed_from_u64(stream_seed(master_seed, 1, node as u64)),
            ev_ctr: 0,
            pkt_ctr: 0,
            timers: TimerSlab::default(),
            epoch: 0,
            fault_pos: 0,
        }
    }
}

/// splitmix64 over a tagged input: derives decorrelated per-entity RNG
/// streams (per node, per link) from the single master seed.
pub(crate) fn stream_seed(master: u64, kind: u64, a: u64) -> u64 {
    let mut z =
        master ^ kind.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ a.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-shard counters. Kept per shard both so worker threads never share a
/// cache line on the hot path and so the runner can report per-shard
/// event throughput.
#[derive(Debug, Default, Clone)]
pub(crate) struct ShardCounters {
    pub(crate) events: u64,
    pub(crate) arrivals: u64,
    pub(crate) unrouted: u64,
    pub(crate) timer_skipped: u64,
    /// Cross-shard arrivals pushed to another shard's inbox.
    pub(crate) xsent: u64,
    /// Cross-shard arrivals accepted from other shards' outboxes.
    pub(crate) xrecv: u64,
    /// Packet deliveries rejected because the destination node was down
    /// (crashed or partitioned).
    pub(crate) node_rejected: u64,
    /// Timer expiries dropped because the node was crashed, or because the
    /// timer was armed before the node's last crash-restart.
    pub(crate) node_timer_dropped: u64,
    /// Crash-restart recoveries performed ([`Node::on_restart`] calls).
    pub(crate) node_restarts: u64,
    /// Sends discarded because the emitting node was partitioned.
    pub(crate) node_tx_dropped: u64,
    /// Instant of the last event dispatched on this shard.
    pub(crate) last_at: Instant,
}

/// Handle given to nodes during event dispatch.
pub struct Ctx<'a> {
    pub(crate) now: Instant,
    pub(crate) node: NodeId,
    pub(crate) actions: &'a mut Vec<Action>,
    pub(crate) rng: &'a mut ChaCha8Rng,
    pub(crate) next_pkt_id: &'a mut u64,
    pub(crate) timers: &'a mut TimerSlab,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// The id of the node being invoked.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Queue `pkt` for transmission out of `port`. If the port is not
    /// connected the packet is dropped and counted in
    /// [`Simulator::unrouted_packets`].
    pub fn send(&mut self, port: PortId, pkt: Packet) {
        self.actions.push(Action::Send { port, pkt });
    }

    /// Schedule a timer for this node at an absolute instant.
    pub fn schedule_at(&mut self, at: Instant, token: u64) {
        self.actions.push(Action::Timer {
            at,
            token,
            guard: None,
        });
    }

    /// Schedule a timer `d` from now.
    pub fn schedule_in(&mut self, d: Duration, token: u64) {
        let at = self.now + d;
        self.schedule_at(at, token);
    }

    /// Schedule a cancellable timer at an absolute instant. The returned
    /// handle can be passed to [`Ctx::cancel_timer`] to suppress the
    /// expiry; a cancelled timer is dropped inside the engine without
    /// invoking [`Node::on_timer`].
    pub fn schedule_at_cancellable(&mut self, at: Instant, token: u64) -> TimerHandle {
        let guard = self.timers.alloc();
        self.actions.push(Action::Timer {
            at,
            token,
            guard: Some(guard),
        });
        guard
    }

    /// Schedule a cancellable timer `d` from now (see
    /// [`Ctx::schedule_at_cancellable`]).
    pub fn schedule_in_cancellable(&mut self, d: Duration, token: u64) -> TimerHandle {
        let at = self.now + d;
        self.schedule_at_cancellable(at, token)
    }

    /// Cancel a timer armed with [`Ctx::schedule_at_cancellable`]. Returns
    /// `true` if the timer was still pending; `false` if it already fired
    /// or was already cancelled (both safe to call).
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.timers.invalidate(handle)
    }

    /// This node's private deterministic RNG stream (derived from the
    /// master seed and the node id, so draws are independent of other
    /// nodes' dispatch order).
    pub fn rng(&mut self) -> &mut impl RngCore {
        self.rng
    }

    /// Allocate a fresh, simulation-unique packet id from this node's
    /// private id space.
    pub fn fresh_packet_id(&mut self) -> u64 {
        let id = ((self.node as u64 + 1) << 40) | *self.next_pkt_id;
        *self.next_pkt_id += 1;
        id
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EvKind {
    /// Packet delivery at (node, port).
    Arrive(NodeId, PortId),
    /// Timer expiry at node with a token, optionally guarded by a
    /// cancellation handle, stamped with the node's lifecycle epoch at
    /// arming time (a timer armed before a crash-restart never fires).
    Timer(NodeId, u64, Option<TimerHandle>, u32),
}

/// Event payload stored in the wheel (the `(at, key)` pair lives in the
/// wheel entry itself).
pub(crate) struct EvPayload {
    pub(crate) kind: EvKind,
    pub(crate) pkt: Option<Packet>,
}

impl EvPayload {
    pub(crate) fn node(&self) -> NodeId {
        match self.kind {
            EvKind::Arrive(n, _) | EvKind::Timer(n, _, _, _) => n,
        }
    }
}

/// The discrete-event network simulator.
pub struct Simulator {
    pub(crate) now: Instant,
    seed: u64,
    nshards: usize,
    /// One event wheel per shard.
    pub(crate) queues: Vec<TimerWheel<EvPayload, EvKey>>,
    pub(crate) nodes: Vec<Option<Box<dyn Node>>>,
    /// Dense link table: `links[node][port]`, grown on connect.
    pub(crate) links: Vec<Vec<Option<Link>>>,
    pub(crate) meta: Vec<NodeMeta>,
    /// Per-node region label (assigned at add time).
    region: Vec<u32>,
    /// Per-node shard: `region % nshards`.
    pub(crate) shard_of: Vec<u32>,
    /// Emission counter for harness-injected events.
    ext_ctr: u64,
    /// Packets injected by the harness (conservation accounting).
    injected: u64,
    pub(crate) counters: Vec<ShardCounters>,
    /// Compiled node-lifecycle outage schedules, indexed by node; empty
    /// when no [`NodeFaultPlan`] is attached (the no-plan fast path).
    pub(crate) node_faults: Vec<NodeOutageSet>,
    /// Cached conservative lookahead; `None` = recompute on next parallel
    /// run (topology or link delay changed).
    pub(crate) lookahead: Option<Duration>,
    /// Reusable per-dispatch action buffer (serial path).
    pub(crate) scratch: Vec<Action>,
}

impl Simulator {
    /// Create a simulator seeded for deterministic runs, with the
    /// process-default shard count (see [`set_default_shards`]).
    pub fn new(seed: u64) -> Simulator {
        Simulator::with_shards(seed, default_shards())
    }

    /// Create a simulator with an explicit shard count. `shards == 1` is
    /// the classic single-threaded engine; results are byte-identical at
    /// every shard count.
    pub fn with_shards(seed: u64, shards: usize) -> Simulator {
        let shards = shards.max(1);
        Simulator {
            now: Instant::ZERO,
            seed,
            nshards: shards,
            queues: (0..shards).map(|_| TimerWheel::new()).collect(),
            nodes: Vec::new(),
            links: Vec::new(),
            meta: Vec::new(),
            region: Vec::new(),
            shard_of: Vec::new(),
            ext_ctr: 0,
            injected: 0,
            counters: vec![ShardCounters::default(); shards],
            node_faults: Vec::new(),
            lookahead: None,
            scratch: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of shards this simulator runs on.
    pub fn shards(&self) -> usize {
        self.nshards
    }

    /// Number of events dispatched so far (cancelled timer expiries
    /// included, for parity with runs that dispatch them as no-ops).
    pub fn events_processed(&self) -> u64 {
        self.counters.iter().map(|c| c.events).sum()
    }

    /// Events dispatched so far, broken down by shard.
    pub fn events_by_shard(&self) -> Vec<u64> {
        self.counters.iter().map(|c| c.events).collect()
    }

    /// Packet-arrival events dispatched so far (for delivery conservation
    /// checks: every accepted transmission and injected packet must
    /// eventually show up here once the queues drain).
    pub fn arrivals_dispatched(&self) -> u64 {
        self.counters.iter().map(|c| c.arrivals).sum()
    }

    /// Arrival events handed from one shard to another (sender side).
    pub fn cross_shard_sent(&self) -> u64 {
        self.counters.iter().map(|c| c.xsent).sum()
    }

    /// Arrival events accepted from other shards (receiver side). Equals
    /// [`Simulator::cross_shard_sent`] whenever no window exchange lost an
    /// event.
    pub fn cross_shard_received(&self) -> u64 {
        self.counters.iter().map(|c| c.xrecv).sum()
    }

    /// Packets injected directly by the harness.
    pub fn injected_packets(&self) -> u64 {
        self.injected
    }

    /// Timer expiries dropped at the queue because the timer was cancelled.
    pub fn timer_fires_skipped(&self) -> u64 {
        self.counters.iter().map(|c| c.timer_skipped).sum()
    }

    /// Packets sent out of unconnected ports (usually a topology bug).
    pub fn unrouted_packets(&self) -> u64 {
        self.counters.iter().map(|c| c.unrouted).sum()
    }

    /// The conservative lookahead (minimum cross-shard propagation delay)
    /// the parallel driver would use right now; `None` until first
    /// computed or after a topology change. `Duration::ZERO` never occurs
    /// — a zero-delay cross-shard link is rejected.
    pub fn lookahead(&self) -> Option<Duration> {
        self.lookahead
    }

    /// Add a node in region 0, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.add_node_in_region(node, 0)
    }

    /// Add a node in `region`, returning its id. Regions are mapped onto
    /// shards as `region % shards`; all of a node's events execute on its
    /// shard's thread. Assign regions at creation time, before the node is
    /// linked or targeted by any event.
    pub fn add_node_in_region(&mut self, node: Box<dyn Node>, region: u32) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Some(node));
        self.links.push(Vec::new());
        self.meta.push(NodeMeta::new(self.seed, id));
        self.region.push(region);
        self.shard_of.push(region % self.nshards as u32);
        self.lookahead = None;
        id
    }

    /// The region a node was added in.
    pub fn region_of(&self, node: NodeId) -> u32 {
        self.region[node]
    }

    /// Connect `from`'s `from_port` to `to`'s `to_port` with a unidirectional
    /// link.
    pub fn connect_simplex(
        &mut self,
        from: (NodeId, PortId),
        to: (NodeId, PortId),
        cfg: LinkConfig,
    ) {
        assert!(from.0 < self.nodes.len(), "unknown source node");
        assert!(to.0 < self.nodes.len(), "unknown destination node");
        let seed = stream_seed(self.seed, 2, ((from.0 as u64) << 20) | from.1 as u64);
        let ports = &mut self.links[from.0];
        if ports.len() <= from.1 {
            ports.resize_with(from.1 + 1, || None);
        }
        assert!(ports[from.1].is_none(), "port {from:?} already connected");
        ports[from.1] = Some(Link::new(cfg, to, seed));
        self.lookahead = None;
    }

    /// Connect two nodes with a symmetric pair of links.
    pub fn connect(&mut self, a: (NodeId, PortId), b: (NodeId, PortId), cfg: LinkConfig) {
        self.connect_simplex(a, b, cfg.clone());
        self.connect_simplex(b, a, cfg);
    }

    /// Connect two nodes with asymmetric link configurations (e.g. LTE
    /// uplink vs downlink rates). `a_to_b` shapes traffic from `a` to `b`.
    pub fn connect_asymmetric(
        &mut self,
        a: (NodeId, PortId),
        b: (NodeId, PortId),
        a_to_b: LinkConfig,
        b_to_a: LinkConfig,
    ) {
        self.connect_simplex(a, b, a_to_b);
        self.connect_simplex(b, a, b_to_a);
    }

    fn link_mut(&mut self, from: (NodeId, PortId)) -> Option<&mut Link> {
        self.links.get_mut(from.0)?.get_mut(from.1)?.as_mut()
    }

    fn link_ref(&self, from: (NodeId, PortId)) -> Option<&Link> {
        self.links.get(from.0)?.get(from.1)?.as_ref()
    }

    /// Next key for a harness-originated event.
    fn ext_key(&mut self) -> EvKey {
        let ctr = self.ext_ctr;
        self.ext_ctr += 1;
        EvKey {
            src: EvKey::EXTERNAL,
            ctr,
        }
    }

    /// Schedule an initial timer for a node (used to kick off sources).
    pub fn schedule_timer(&mut self, node: NodeId, at: Instant, token: u64) {
        let key = self.ext_key();
        let shard = self.shard_of[node] as usize;
        let epoch = self.meta[node].epoch;
        self.queues[shard].schedule(
            at,
            key,
            EvPayload {
                kind: EvKind::Timer(node, token, None, epoch),
                pkt: None,
            },
        );
    }

    /// Inject a packet arriving at `(node, port)` at time `at`.
    pub fn inject_packet(&mut self, node: NodeId, port: PortId, at: Instant, pkt: Packet) {
        let key = self.ext_key();
        let shard = self.shard_of[node] as usize;
        self.injected += 1;
        self.queues[shard].schedule(
            at,
            key,
            EvPayload {
                kind: EvKind::Arrive(node, port),
                pkt: Some(pkt),
            },
        );
    }

    /// Run until the event queues drain or `limit` is reached, whichever
    /// is first. Returns the number of events processed by this call.
    pub fn run_until(&mut self, limit: Instant) -> u64 {
        let n = if self.nshards == 1 {
            crate::shard::run_serial(self, limit)
        } else {
            crate::shard::run_parallel(self, limit)
        };
        // Even if no event lands exactly at `limit`, the clock advances.
        if self.now < limit {
            self.now = limit;
        }
        n
    }

    /// Run until the event queues are fully drained.
    pub fn run_until_idle(&mut self) -> u64 {
        if self.nshards == 1 {
            crate::shard::run_serial(self, Instant::MAX)
        } else {
            crate::shard::run_parallel(self, Instant::MAX)
        }
    }

    /// Borrow a node as its concrete type (panics on wrong type or id).
    pub fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        let node = self.nodes[id].as_ref().expect("node taken");
        (node.as_ref() as &dyn Any)
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutably borrow a node as its concrete type.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        let node = self.nodes[id].as_mut().expect("node taken");
        (node.as_mut() as &mut dyn Any)
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    /// Attach a fault plan to the link leaving `(node, port)`. Replaces any
    /// existing plan; pass a fresh plan per link so each keeps its own RNG
    /// stream. Panics if the port is not connected.
    pub fn attach_fault_plan(&mut self, from: (NodeId, PortId), plan: FaultPlan) {
        let link = self.link_mut(from).expect("fault plan on unknown link");
        link.set_fault_plan(Some(plan));
    }

    /// Detach the fault plan (if any) from the link leaving `(node, port)`.
    pub fn clear_fault_plan(&mut self, from: (NodeId, PortId)) {
        if let Some(link) = self.link_mut(from) {
            link.set_fault_plan(None);
        }
    }

    /// Attach a node-lifecycle fault plan. Probability draws are resolved
    /// here (from the plan's own seeded stream, keyed by rule content, so
    /// insertion order is irrelevant) and the plan is compiled into
    /// per-node outage schedules. Replaces any previous plan. Attach after
    /// the topology is built; nodes added later are never faulted. A plan
    /// whose rules all miss their draws behaves byte-identically to no
    /// plan at all.
    pub fn attach_node_fault_plan(&mut self, plan: &NodeFaultPlan) {
        self.node_faults = plan.compile(self.nodes.len());
    }

    /// Detach the node-lifecycle fault plan, if any.
    pub fn clear_node_fault_plan(&mut self) {
        self.node_faults.clear();
    }

    /// Packet deliveries rejected because the destination node was down.
    pub fn node_arrivals_rejected(&self) -> u64 {
        self.counters.iter().map(|c| c.node_rejected).sum()
    }

    /// Timer expiries dropped by node faults (node crashed at expiry, or
    /// the timer predates the node's last crash-restart).
    pub fn node_timers_dropped(&self) -> u64 {
        self.counters.iter().map(|c| c.node_timer_dropped).sum()
    }

    /// Crash-restart recoveries performed ([`Node::on_restart`] calls).
    pub fn node_restarts(&self) -> u64 {
        self.counters.iter().map(|c| c.node_restarts).sum()
    }

    /// Sends discarded because the emitting node was partitioned.
    pub fn node_sends_dropped(&self) -> u64 {
        self.counters.iter().map(|c| c.node_tx_dropped).sum()
    }

    /// Statistics of the link leaving `(node, port)`, if connected.
    pub fn link_stats(&self, from: (NodeId, PortId)) -> Option<&LinkStats> {
        self.link_ref(from).map(|l| l.stats())
    }

    /// Mutate the configuration of an existing link (e.g. change its rate
    /// mid-experiment).
    pub fn reconfigure_link(&mut self, from: (NodeId, PortId), f: impl FnOnce(&mut LinkConfig)) {
        let link = self.link_mut(from).expect("reconfigure of unknown link");
        link.reconfigure(f);
        self.lookahead = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    /// Node that reflects every packet back out the port it arrived on.
    struct Echo {
        seen: u32,
    }
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
            self.seen += 1;
            let mut back = pkt;
            std::mem::swap(&mut back.src, &mut back.dst);
            ctx.send(port, back);
        }
    }

    /// Node that sends `count` packets then records echo round-trip times.
    struct Prober {
        dst: Ipv4Addr,
        count: u32,
        rtts: Vec<Duration>,
    }
    impl Node for Prober {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
            self.rtts.push(ctx.now() - pkt.created);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            for _ in 0..self.count {
                let pkt =
                    Packet::icmp(Ipv4Addr::new(10, 0, 0, 1), self.dst, 56).with_created(ctx.now());
                ctx.send(0, pkt);
            }
        }
    }

    #[test]
    fn echo_round_trip_includes_both_directions() {
        let mut sim = Simulator::new(1);
        let prober = sim.add_node(Box::new(Prober {
            dst: Ipv4Addr::new(10, 0, 0, 2),
            count: 3,
            rtts: Vec::new(),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        sim.connect(
            (prober, 0),
            (echo, 0),
            LinkConfig::delay_only(Duration::from_millis(5)),
        );
        sim.schedule_timer(prober, Instant::ZERO, 0);
        sim.run_until_idle();

        assert_eq!(sim.node_ref::<Echo>(echo).seen, 3);
        let rtts = &sim.node_ref::<Prober>(prober).rtts;
        assert_eq!(rtts.len(), 3);
        for rtt in rtts {
            assert_eq!(*rtt, Duration::from_millis(10));
        }
    }

    #[test]
    fn serialization_delays_queue_back_to_back_packets() {
        // 3 packets of 1500B payload at 12 Mbps: ~1 ms serialization each,
        // so arrivals are spaced by the serialization time.
        let mut sim = Simulator::new(1);
        let prober = sim.add_node(Box::new(Prober {
            dst: Ipv4Addr::new(10, 0, 0, 2),
            count: 3,
            rtts: Vec::new(),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        let cfg = LinkConfig {
            rate_bps: 12_000_000,
            ..LinkConfig::delay_only(Duration::ZERO)
        };
        sim.connect((prober, 0), (echo, 0), cfg);
        sim.schedule_timer(prober, Instant::ZERO, 0);
        sim.run_until_idle();
        let rtts = &sim.node_ref::<Prober>(prober).rtts;
        // Packet i waits behind i-1 on the forward link; returns are also
        // serialized but echo responses are likewise spaced, so RTT grows
        // linearly.
        assert!(rtts[0] < rtts[1] && rtts[1] < rtts[2], "rtts: {rtts:?}");
    }

    #[test]
    fn unconnected_port_counts_unrouted() {
        struct Shouter;
        impl Node for Shouter {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) {
                let p = Packet::udp(
                    (Ipv4Addr::new(1, 1, 1, 1), 1),
                    (Ipv4Addr::new(2, 2, 2, 2), 2),
                    10,
                );
                ctx.send(9, p);
            }
        }
        let mut sim = Simulator::new(7);
        let n = sim.add_node(Box::new(Shouter));
        sim.schedule_timer(n, Instant::ZERO, 0);
        sim.run_until_idle();
        assert_eq!(sim.unrouted_packets(), 1);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulator::new(0);
        sim.run_until(Instant::from_secs(3));
        assert_eq!(sim.now(), Instant::from_secs(3));
    }

    fn probe_run(seed: u64, shards: usize, regions: [u32; 2]) -> Vec<Duration> {
        let mut sim = Simulator::with_shards(seed, shards);
        let prober = sim.add_node_in_region(
            Box::new(Prober {
                dst: Ipv4Addr::new(10, 0, 0, 2),
                count: 20,
                rtts: Vec::new(),
            }),
            regions[0],
        );
        let echo = sim.add_node_in_region(Box::new(Echo { seen: 0 }), regions[1]);
        let cfg = LinkConfig {
            rate_bps: 1_000_000,
            jitter: Duration::from_micros(500),
            ..LinkConfig::delay_only(Duration::from_millis(2))
        };
        sim.connect((prober, 0), (echo, 0), cfg);
        sim.schedule_timer(prober, Instant::ZERO, 0);
        sim.run_until_idle();
        sim.node_ref::<Prober>(prober).rtts.clone()
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        assert_eq!(probe_run(42, 1, [0, 0]), probe_run(42, 1, [0, 0]));
        assert_ne!(
            probe_run(42, 1, [0, 0]),
            probe_run(43, 1, [0, 0]),
            "jitter should depend on the seed"
        );
    }

    #[test]
    fn sharded_run_matches_single_threaded_run() {
        let serial = probe_run(42, 1, [0, 1]);
        for shards in [2, 4] {
            assert_eq!(
                serial,
                probe_run(42, shards, [0, 1]),
                "shards={shards} must be byte-identical to shards=1"
            );
        }
    }

    #[test]
    fn cross_shard_exchange_conserves_events() {
        let mut sim = Simulator::with_shards(11, 2);
        let prober = sim.add_node_in_region(
            Box::new(Prober {
                dst: Ipv4Addr::new(10, 0, 0, 2),
                count: 50,
                rtts: Vec::new(),
            }),
            0,
        );
        let echo = sim.add_node_in_region(Box::new(Echo { seen: 0 }), 1);
        sim.connect(
            (prober, 0),
            (echo, 0),
            LinkConfig::delay_only(Duration::from_millis(1)),
        );
        sim.schedule_timer(prober, Instant::ZERO, 0);
        sim.run_until_idle();
        assert_eq!(sim.cross_shard_sent(), 100, "50 pings + 50 echoes");
        assert_eq!(sim.cross_shard_sent(), sim.cross_shard_received());
        assert_eq!(sim.node_ref::<Prober>(prober).rtts.len(), 50);
    }

    #[test]
    #[should_panic(expected = "zero propagation delay")]
    fn zero_delay_cross_shard_link_is_rejected() {
        let mut sim = Simulator::with_shards(1, 2);
        let a = sim.add_node_in_region(Box::new(Echo { seen: 0 }), 0);
        let b = sim.add_node_in_region(Box::new(Echo { seen: 0 }), 1);
        sim.connect((a, 0), (b, 0), LinkConfig::delay_only(Duration::ZERO));
        sim.schedule_timer(a, Instant::ZERO, 0);
        sim.run_until_idle();
    }

    /// Node that arms a cancellable timer, then cancels it on the next
    /// (plain) timer, counting which expiries actually reached it.
    struct Canceller {
        armed: Option<TimerHandle>,
        fired: Vec<u64>,
    }
    impl Node for Canceller {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.fired.push(token);
            match token {
                0 => {
                    // Arm a guard far in the future, and a checkpoint before
                    // it that will cancel it.
                    self.armed = Some(ctx.schedule_in_cancellable(Duration::from_millis(100), 99));
                    ctx.schedule_in(Duration::from_millis(10), 1);
                }
                1 => {
                    let h = self.armed.take().expect("guard armed");
                    assert!(ctx.cancel_timer(h), "guard should still be pending");
                    assert!(!ctx.cancel_timer(h), "double cancel is a no-op");
                    // A fresh cancellable timer that is allowed to fire.
                    ctx.schedule_in_cancellable(Duration::from_millis(5), 2);
                }
                _ => {}
            }
        }
    }

    use crate::fault::{NodeFaultPlan, NodeFaultRule};

    /// Source that sends one ping every 10 ms, `max` times.
    struct Ticker {
        dst: Ipv4Addr,
        sent: u32,
        max: u32,
    }
    impl Node for Ticker {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if self.sent < self.max {
                self.sent += 1;
                let pkt =
                    Packet::icmp(Ipv4Addr::new(10, 0, 0, 1), self.dst, 56).with_created(ctx.now());
                ctx.send(0, pkt);
                ctx.schedule_in(Duration::from_millis(10), token);
            }
        }
    }

    /// Fault-target node: counts deliveries and self-rescheduled ticks.
    /// `trace` is harness-side instrumentation and survives restarts; the
    /// node's own state (`seen`, `ticks`) is erased by `on_restart`.
    struct Tally {
        seen: u32,
        trace: Vec<u32>,
        ticks: u32,
        tick_every: Option<Duration>,
        long_timer_at: Option<Instant>,
        long_fired: bool,
    }
    impl Tally {
        fn new() -> Tally {
            Tally {
                seen: 0,
                trace: Vec::new(),
                ticks: 0,
                tick_every: None,
                long_timer_at: None,
                long_fired: false,
            }
        }
    }
    impl Node for Tally {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {
            self.seen += 1;
            self.trace.push(self.seen);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            match token {
                0 => {
                    if self.tick_every.is_some() {
                        ctx.schedule_in(Duration::ZERO, 1);
                    }
                    if let Some(at) = self.long_timer_at {
                        ctx.schedule_at(at, 2);
                    }
                }
                1 => {
                    self.ticks += 1;
                    let pkt = Packet::icmp(
                        Ipv4Addr::new(10, 0, 0, 2),
                        Ipv4Addr::new(10, 0, 0, 1),
                        56,
                    )
                    .with_created(ctx.now());
                    ctx.send(0, pkt);
                    if let Some(d) = self.tick_every {
                        ctx.schedule_in(d, 1);
                    }
                }
                2 => self.long_fired = true,
                _ => {}
            }
        }
        fn on_restart(&mut self) {
            self.seen = 0;
            self.ticks = 0;
        }
    }

    fn ticker_tally(sim: &mut Simulator, regions: [u32; 2], tally: Tally) -> (NodeId, NodeId) {
        let ticker = sim.add_node_in_region(
            Box::new(Ticker {
                dst: Ipv4Addr::new(10, 0, 0, 2),
                sent: 0,
                max: 30,
            }),
            regions[0],
        );
        let t = sim.add_node_in_region(Box::new(tally), regions[1]);
        sim.connect(
            (ticker, 0),
            (t, 0),
            LinkConfig::delay_only(Duration::from_millis(1)),
        );
        sim.schedule_timer(ticker, Instant::ZERO, 0);
        (ticker, t)
    }

    #[test]
    fn crash_restart_rejects_deliveries_and_erases_state() {
        let mut sim = Simulator::new(5);
        let (_, tally) = ticker_tally(&mut sim, [0, 0], Tally::new());
        // Arrivals land at 1, 11, ..., 291 ms. Down for [100, 150) ms:
        // the five arrivals at 101..141 bounce, and the node restarts
        // empty before the 151 ms delivery.
        let plan = NodeFaultPlan::new(1).with_rule(NodeFaultRule::crash_restart(
            tally,
            Instant::from_millis(100),
            Duration::from_millis(50),
        ));
        sim.attach_node_fault_plan(&plan);
        sim.run_until_idle();
        assert_eq!(sim.node_arrivals_rejected(), 5);
        assert_eq!(sim.node_restarts(), 1);
        let t = sim.node_ref::<Tally>(tally);
        assert_eq!(t.seen, 15, "10 pre-crash + 15 post-restart, reset between");
        let expect: Vec<u32> = (1..=10).chain(1..=15).collect();
        assert_eq!(t.trace, expect, "state restarted from empty");
    }

    #[test]
    fn timers_armed_before_a_crash_never_fire() {
        let mut sim = Simulator::new(5);
        let mut tally = Tally::new();
        tally.tick_every = Some(Duration::from_millis(7));
        tally.long_timer_at = Some(Instant::from_millis(200));
        let (_, tally) = ticker_tally(&mut sim, [0, 0], tally);
        sim.schedule_timer(tally, Instant::ZERO, 0);
        let plan = NodeFaultPlan::new(1).with_rule(NodeFaultRule::crash_restart(
            tally,
            Instant::from_millis(100),
            Duration::from_millis(50),
        ));
        sim.attach_node_fault_plan(&plan);
        sim.run_until_idle();
        let t = sim.node_ref::<Tally>(tally);
        // The tick chain dies inside the crash window (its next expiry is
        // rejected, so nothing reschedules it) and the pre-crash long
        // timer is epoch-stale by the time it pops at 200 ms.
        assert_eq!(t.ticks, 0, "ticks erased at restart and chain is dead");
        assert!(!t.long_fired, "pre-crash timer must not survive the restart");
        assert!(sim.node_timers_dropped() >= 2);
        assert_eq!(sim.node_restarts(), 1);
    }

    #[test]
    fn partition_preserves_state_and_cuts_traffic_both_ways() {
        let mut sim = Simulator::new(5);
        let mut tally = Tally::new();
        tally.tick_every = Some(Duration::from_millis(7));
        let (_, tally) = ticker_tally(&mut sim, [0, 0], tally);
        sim.schedule_timer(tally, Instant::ZERO, 0);
        let plan = NodeFaultPlan::new(1).with_rule(NodeFaultRule::partition(
            tally,
            Instant::from_millis(100),
            Duration::from_millis(50),
        ));
        sim.attach_node_fault_plan(&plan);
        // The tick chain reschedules forever, so bound the run instead of
        // draining to idle.
        sim.run_until(Instant::from_millis(300));
        let t = sim.node_ref::<Tally>(tally);
        assert_eq!(sim.node_arrivals_rejected(), 5, "deliveries bounce");
        assert_eq!(sim.node_restarts(), 0, "a partition is not a crash");
        assert!(
            sim.node_sends_dropped() >= 7,
            "tick sends inside the window go nowhere"
        );
        assert_eq!(sim.node_timers_dropped(), 0, "timers keep firing");
        assert_eq!(t.seen, 25, "10 before + 15 after, state preserved");
        let expect: Vec<u32> = (1..=25).collect();
        assert_eq!(t.trace, expect, "no reset across a partition");
    }

    #[test]
    fn empty_or_all_miss_node_plan_is_byte_identical_to_none() {
        let run = |plan: Option<NodeFaultPlan>| {
            let mut sim = Simulator::new(42);
            let (_, tally) = ticker_tally(&mut sim, [0, 0], Tally::new());
            if let Some(p) = plan {
                sim.attach_node_fault_plan(&p);
            }
            sim.run_until_idle();
            (
                sim.node_ref::<Tally>(tally).trace.clone(),
                sim.events_processed(),
            )
        };
        let baseline = run(None);
        assert_eq!(baseline, run(Some(NodeFaultPlan::new(7))));
        let all_miss = NodeFaultPlan::new(7).with_rule(
            NodeFaultRule::crash_stop(1, Instant::from_millis(50)).with_probability(0.0),
        );
        assert_eq!(baseline, run(Some(all_miss)));
    }

    #[test]
    fn node_faults_are_shard_invariant() {
        let run = |shards: usize| {
            let mut sim = Simulator::with_shards(42, shards);
            let mut tally = Tally::new();
            tally.tick_every = Some(Duration::from_millis(7));
            let (_, tally) = ticker_tally(&mut sim, [0, 1], tally);
            sim.schedule_timer(tally, Instant::ZERO, 0);
            let plan = NodeFaultPlan::new(3).with_rule(NodeFaultRule::crash_restart(
                tally,
                Instant::from_millis(100),
                Duration::from_millis(50),
            ));
            sim.attach_node_fault_plan(&plan);
            sim.run_until_idle();
            (
                sim.node_ref::<Tally>(tally).trace.clone(),
                sim.events_processed(),
                sim.node_arrivals_rejected(),
                sim.node_restarts(),
            )
        };
        let serial = run(1);
        for shards in [2, 4] {
            assert_eq!(serial, run(shards), "shards={shards}");
        }
    }

    #[test]
    fn crash_stop_silences_a_node_forever() {
        let mut sim = Simulator::new(5);
        let (_, tally) = ticker_tally(&mut sim, [0, 0], Tally::new());
        let plan = NodeFaultPlan::new(1)
            .with_rule(NodeFaultRule::crash_stop(tally, Instant::from_millis(100)));
        sim.attach_node_fault_plan(&plan);
        sim.run_until_idle();
        assert_eq!(sim.node_restarts(), 0);
        assert_eq!(sim.node_arrivals_rejected(), 20);
        assert_eq!(sim.node_ref::<Tally>(tally).seen, 10);
    }

    #[test]
    fn cancelled_timers_never_reach_the_node() {
        let mut sim = Simulator::new(3);
        let n = sim.add_node(Box::new(Canceller {
            armed: None,
            fired: Vec::new(),
        }));
        sim.schedule_timer(n, Instant::ZERO, 0);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Canceller>(n).fired, vec![0, 1, 2]);
        assert_eq!(sim.timer_fires_skipped(), 1);
        // The cancelled expiry still popped from the queue and is counted,
        // matching runs where stale guards dispatch as no-ops.
        assert_eq!(sim.events_processed(), 4);
    }
}
