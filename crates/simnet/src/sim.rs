//! The discrete-event simulator: nodes, ports, events and the run loop.
//!
//! A [`Simulator`] owns a set of [`Node`]s connected by unidirectional
//! [`Link`]s. Nodes react to packet arrivals and timers
//! through a [`Ctx`] handle that lets them send packets out of their ports
//! and schedule further timers. Event ordering is total — ties on the
//! timestamp break on a monotonically increasing sequence number — so every
//! run is deterministic given the seed.
//!
//! The run loop is built for throughput: events live in a timing wheel
//! ([`crate::wheel`]) instead of a binary heap, links hang off a dense
//! per-node port table so `send` is two array indexes, the per-dispatch
//! action buffer is reused across events, and guard timers can be
//! cancelled ([`Ctx::cancel_timer`]) so dead expiries are dropped at the
//! queue instead of round-tripping through a node.

use crate::fault::FaultPlan;
use crate::link::{Link, LinkConfig, LinkStats};
use crate::packet::Packet;
use crate::time::{Duration, Instant};
use crate::wheel::TimerWheel;
use rand::RngCore;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::any::Any;

/// Identifier of a node within a simulator.
pub type NodeId = usize;
/// Identifier of a port on a node. Ports are just small integers; each crate
/// defines its own conventions (e.g. "port 0 faces the eNodeB").
pub type PortId = usize;

/// Behaviour of a simulated network element.
///
/// Nodes are single-threaded state machines: the simulator calls exactly one
/// of these hooks at a time. `Any` supertrait (plus Rust's dyn upcasting)
/// lets callers recover concrete node types after a run via
/// [`Simulator::node_ref`].
pub trait Node: Any {
    /// A packet arrived on `port`.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet);

    /// A timer scheduled with [`Ctx::schedule_at`]/[`Ctx::schedule_in`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

/// Handle to a cancellable timer (see [`Ctx::schedule_in_cancellable`]).
///
/// Generation-tagged: the handle names a slab slot plus the generation it
/// was armed in, so a handle left over from a completed or cancelled timer
/// can never affect a later timer that happens to reuse the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    slot: u32,
    gen: u32,
}

/// Generation slab backing [`TimerHandle`]s.
#[derive(Default)]
struct TimerSlab {
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl TimerSlab {
    /// Allocate a live handle.
    fn alloc(&mut self) -> TimerHandle {
        if let Some(slot) = self.free.pop() {
            TimerHandle {
                slot,
                gen: self.gens[slot as usize],
            }
        } else {
            self.gens.push(0);
            TimerHandle {
                slot: (self.gens.len() - 1) as u32,
                gen: 0,
            }
        }
    }

    /// Consume a handle: returns `true` (and frees the slot) iff it was
    /// still live. Used both by cancellation and by expiry.
    fn invalidate(&mut self, h: TimerHandle) -> bool {
        if self.gens[h.slot as usize] == h.gen {
            self.gens[h.slot as usize] = self.gens[h.slot as usize].wrapping_add(1);
            self.free.push(h.slot);
            true
        } else {
            false
        }
    }
}

/// Deferred side effects produced by a node during a hook invocation.
enum Action {
    Send {
        port: PortId,
        pkt: Packet,
    },
    Timer {
        at: Instant,
        token: u64,
        guard: Option<TimerHandle>,
    },
}

/// Handle given to nodes during event dispatch.
pub struct Ctx<'a> {
    now: Instant,
    node: NodeId,
    actions: &'a mut Vec<Action>,
    rng: &'a mut ChaCha8Rng,
    next_pkt_id: &'a mut u64,
    timers: &'a mut TimerSlab,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// The id of the node being invoked.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Queue `pkt` for transmission out of `port`. If the port is not
    /// connected the packet is dropped and counted in
    /// [`Simulator::unrouted_packets`].
    pub fn send(&mut self, port: PortId, pkt: Packet) {
        self.actions.push(Action::Send { port, pkt });
    }

    /// Schedule a timer for this node at an absolute instant.
    pub fn schedule_at(&mut self, at: Instant, token: u64) {
        self.actions.push(Action::Timer {
            at,
            token,
            guard: None,
        });
    }

    /// Schedule a timer `d` from now.
    pub fn schedule_in(&mut self, d: Duration, token: u64) {
        let at = self.now + d;
        self.schedule_at(at, token);
    }

    /// Schedule a cancellable timer at an absolute instant. The returned
    /// handle can be passed to [`Ctx::cancel_timer`] to suppress the
    /// expiry; a cancelled timer is dropped inside the engine without
    /// invoking [`Node::on_timer`].
    pub fn schedule_at_cancellable(&mut self, at: Instant, token: u64) -> TimerHandle {
        let guard = self.timers.alloc();
        self.actions.push(Action::Timer {
            at,
            token,
            guard: Some(guard),
        });
        guard
    }

    /// Schedule a cancellable timer `d` from now (see
    /// [`Ctx::schedule_at_cancellable`]).
    pub fn schedule_in_cancellable(&mut self, d: Duration, token: u64) -> TimerHandle {
        let at = self.now + d;
        self.schedule_at_cancellable(at, token)
    }

    /// Cancel a timer armed with [`Ctx::schedule_at_cancellable`]. Returns
    /// `true` if the timer was still pending; `false` if it already fired
    /// or was already cancelled (both safe to call).
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.timers.invalidate(handle)
    }

    /// The simulation-wide deterministic RNG.
    pub fn rng(&mut self) -> &mut impl RngCore {
        self.rng
    }

    /// Allocate a fresh, simulation-unique packet id.
    pub fn fresh_packet_id(&mut self) -> u64 {
        let id = *self.next_pkt_id;
        *self.next_pkt_id += 1;
        id
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// Packet delivery at (node, port).
    Arrive(NodeId, PortId),
    /// Timer expiry at node with a token, optionally guarded by a
    /// cancellation handle.
    Timer(NodeId, u64, Option<TimerHandle>),
}

/// Event payload stored in the wheel (the `(at, seq)` key lives in the
/// wheel entry itself).
struct EvPayload {
    kind: EvKind,
    pkt: Option<Packet>,
}

/// The discrete-event network simulator.
pub struct Simulator {
    now: Instant,
    seq: u64,
    queue: TimerWheel<EvPayload>,
    nodes: Vec<Option<Box<dyn Node>>>,
    /// Dense link table: `links[node][port]`, grown on connect.
    links: Vec<Vec<Option<Link>>>,
    rng: ChaCha8Rng,
    next_pkt_id: u64,
    unrouted: u64,
    events_processed: u64,
    timers: TimerSlab,
    timer_fires_skipped: u64,
    /// Reusable per-dispatch action buffer.
    scratch: Vec<Action>,
}

impl Simulator {
    /// Create a simulator seeded for deterministic runs.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            now: Instant::ZERO,
            seq: 0,
            queue: TimerWheel::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            next_pkt_id: 0,
            unrouted: 0,
            events_processed: 0,
            timers: TimerSlab::default(),
            timer_fires_skipped: 0,
            scratch: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of events dispatched so far (cancelled timer expiries
    /// included, for parity with runs that dispatch them as no-ops).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Timer expiries dropped at the queue because the timer was cancelled.
    pub fn timer_fires_skipped(&self) -> u64 {
        self.timer_fires_skipped
    }

    /// Packets sent out of unconnected ports (usually a topology bug).
    pub fn unrouted_packets(&self) -> u64 {
        self.unrouted
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(Some(node));
        self.links.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Connect `from`'s `from_port` to `to`'s `to_port` with a unidirectional
    /// link.
    pub fn connect_simplex(
        &mut self,
        from: (NodeId, PortId),
        to: (NodeId, PortId),
        cfg: LinkConfig,
    ) {
        assert!(from.0 < self.nodes.len(), "unknown source node");
        assert!(to.0 < self.nodes.len(), "unknown destination node");
        let ports = &mut self.links[from.0];
        if ports.len() <= from.1 {
            ports.resize_with(from.1 + 1, || None);
        }
        assert!(ports[from.1].is_none(), "port {from:?} already connected");
        ports[from.1] = Some(Link::new(cfg, to));
    }

    /// Connect two nodes with a symmetric pair of links.
    pub fn connect(&mut self, a: (NodeId, PortId), b: (NodeId, PortId), cfg: LinkConfig) {
        self.connect_simplex(a, b, cfg.clone());
        self.connect_simplex(b, a, cfg);
    }

    /// Connect two nodes with asymmetric link configurations (e.g. LTE
    /// uplink vs downlink rates). `a_to_b` shapes traffic from `a` to `b`.
    pub fn connect_asymmetric(
        &mut self,
        a: (NodeId, PortId),
        b: (NodeId, PortId),
        a_to_b: LinkConfig,
        b_to_a: LinkConfig,
    ) {
        self.connect_simplex(a, b, a_to_b);
        self.connect_simplex(b, a, b_to_a);
    }

    fn link_mut(&mut self, from: (NodeId, PortId)) -> Option<&mut Link> {
        self.links.get_mut(from.0)?.get_mut(from.1)?.as_mut()
    }

    fn link_ref(&self, from: (NodeId, PortId)) -> Option<&Link> {
        self.links.get(from.0)?.get(from.1)?.as_ref()
    }

    /// Schedule an initial timer for a node (used to kick off sources).
    pub fn schedule_timer(&mut self, node: NodeId, at: Instant, token: u64) {
        let seq = self.next_seq();
        self.queue.schedule(
            at,
            seq,
            EvPayload {
                kind: EvKind::Timer(node, token, None),
                pkt: None,
            },
        );
    }

    /// Inject a packet arriving at `(node, port)` at time `at`.
    pub fn inject_packet(&mut self, node: NodeId, port: PortId, at: Instant, pkt: Packet) {
        let seq = self.next_seq();
        self.queue.schedule(
            at,
            seq,
            EvPayload {
                kind: EvKind::Arrive(node, port),
                pkt: Some(pkt),
            },
        );
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Queue a packet arrival (seq assignment + wheel insert in one place).
    #[inline]
    fn push_arrival(&mut self, at: Instant, dest: (NodeId, PortId), pkt: Packet) {
        let seq = self.next_seq();
        self.queue.schedule(
            at,
            seq,
            EvPayload {
                kind: EvKind::Arrive(dest.0, dest.1),
                pkt: Some(pkt),
            },
        );
    }

    /// Run until the event queue drains or `limit` is reached, whichever is
    /// first. Returns the number of events processed by this call.
    pub fn run_until(&mut self, limit: Instant) -> u64 {
        let mut n = 0;
        while let Some((at, _)) = self.queue.peek_key() {
            if at > limit {
                break;
            }
            let (at, _, payload) = self.queue.pop().expect("peeked event vanished");
            assert!(at >= self.now, "event scheduled in the past");
            self.now = at;
            self.dispatch(payload);
            n += 1;
        }
        // Even if no event lands exactly at `limit`, the clock advances.
        if self.now < limit {
            self.now = limit;
        }
        self.events_processed += n;
        n
    }

    /// Run until the event queue is fully drained.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut n = 0;
        while let Some((at, _, payload)) = self.queue.pop() {
            assert!(at >= self.now, "event scheduled in the past");
            self.now = at;
            self.dispatch(payload);
            n += 1;
        }
        self.events_processed += n;
        n
    }

    fn dispatch(&mut self, ev: EvPayload) {
        let node_id = match ev.kind {
            EvKind::Arrive(n, _) | EvKind::Timer(n, _, _) => n,
        };
        // Cancelled guard timers die here, before the node is touched.
        if let EvKind::Timer(_, _, Some(guard)) = ev.kind {
            if !self.timers.invalidate(guard) {
                self.timer_fires_skipped += 1;
                return;
            }
        }
        let mut node = self.nodes[node_id]
            .take()
            .unwrap_or_else(|| panic!("node {node_id} re-entered during dispatch"));
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx {
                now: self.now,
                node: node_id,
                actions: &mut actions,
                rng: &mut self.rng,
                next_pkt_id: &mut self.next_pkt_id,
                timers: &mut self.timers,
            };
            match ev.kind {
                EvKind::Arrive(_, port) => {
                    let pkt = ev.pkt.expect("arrival without a packet");
                    node.on_packet(&mut ctx, port, pkt);
                }
                EvKind::Timer(_, token, _) => node.on_timer(&mut ctx, token),
            }
        }
        self.nodes[node_id] = Some(node);
        self.apply_actions(node_id, &mut actions);
        self.scratch = actions;
    }

    fn apply_actions(&mut self, node_id: NodeId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { port, pkt } => {
                    let now = self.now;
                    let Some(link) = self
                        .links
                        .get_mut(node_id)
                        .and_then(|ports| ports.get_mut(port))
                        .and_then(Option::as_mut)
                    else {
                        self.unrouted += 1;
                        continue;
                    };
                    let dest = link.to();
                    let deliveries = link.transmit(now, &pkt, &mut self.rng);
                    match (deliveries.primary, deliveries.duplicate) {
                        (Some(at), None) => self.push_arrival(at, dest, pkt),
                        (Some(at), Some(dup_at)) => {
                            // Payloads are shared buffers, so the duplicate
                            // is a header-only copy.
                            self.push_arrival(at, dest, pkt.clone());
                            self.push_arrival(dup_at, dest, pkt);
                        }
                        // Primary dropped: the duplicate takes the original
                        // packet, no clone needed.
                        (None, Some(dup_at)) => self.push_arrival(dup_at, dest, pkt),
                        (None, None) => {}
                    }
                }
                Action::Timer { at, token, guard } => {
                    let at = at.max(self.now);
                    let seq = self.next_seq();
                    self.queue.schedule(
                        at,
                        seq,
                        EvPayload {
                            kind: EvKind::Timer(node_id, token, guard),
                            pkt: None,
                        },
                    );
                }
            }
        }
    }

    /// Borrow a node as its concrete type (panics on wrong type or id).
    pub fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        let node = self.nodes[id].as_ref().expect("node taken");
        (node.as_ref() as &dyn Any)
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutably borrow a node as its concrete type.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        let node = self.nodes[id].as_mut().expect("node taken");
        (node.as_mut() as &mut dyn Any)
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    /// Attach a fault plan to the link leaving `(node, port)`. Replaces any
    /// existing plan; pass a fresh plan per link so each keeps its own RNG
    /// stream. Panics if the port is not connected.
    pub fn attach_fault_plan(&mut self, from: (NodeId, PortId), plan: FaultPlan) {
        let link = self.link_mut(from).expect("fault plan on unknown link");
        link.set_fault_plan(Some(plan));
    }

    /// Detach the fault plan (if any) from the link leaving `(node, port)`.
    pub fn clear_fault_plan(&mut self, from: (NodeId, PortId)) {
        if let Some(link) = self.link_mut(from) {
            link.set_fault_plan(None);
        }
    }

    /// Statistics of the link leaving `(node, port)`, if connected.
    pub fn link_stats(&self, from: (NodeId, PortId)) -> Option<&LinkStats> {
        self.link_ref(from).map(|l| l.stats())
    }

    /// Mutate the configuration of an existing link (e.g. change its rate
    /// mid-experiment).
    pub fn reconfigure_link(&mut self, from: (NodeId, PortId), f: impl FnOnce(&mut LinkConfig)) {
        let link = self.link_mut(from).expect("reconfigure of unknown link");
        link.reconfigure(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    /// Node that reflects every packet back out the port it arrived on.
    struct Echo {
        seen: u32,
    }
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
            self.seen += 1;
            let mut back = pkt;
            std::mem::swap(&mut back.src, &mut back.dst);
            ctx.send(port, back);
        }
    }

    /// Node that sends `count` packets then records echo round-trip times.
    struct Prober {
        dst: Ipv4Addr,
        count: u32,
        rtts: Vec<Duration>,
    }
    impl Node for Prober {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
            self.rtts.push(ctx.now() - pkt.created);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            for _ in 0..self.count {
                let pkt =
                    Packet::icmp(Ipv4Addr::new(10, 0, 0, 1), self.dst, 56).with_created(ctx.now());
                ctx.send(0, pkt);
            }
        }
    }

    #[test]
    fn echo_round_trip_includes_both_directions() {
        let mut sim = Simulator::new(1);
        let prober = sim.add_node(Box::new(Prober {
            dst: Ipv4Addr::new(10, 0, 0, 2),
            count: 3,
            rtts: Vec::new(),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        sim.connect(
            (prober, 0),
            (echo, 0),
            LinkConfig::delay_only(Duration::from_millis(5)),
        );
        sim.schedule_timer(prober, Instant::ZERO, 0);
        sim.run_until_idle();

        assert_eq!(sim.node_ref::<Echo>(echo).seen, 3);
        let rtts = &sim.node_ref::<Prober>(prober).rtts;
        assert_eq!(rtts.len(), 3);
        for rtt in rtts {
            assert_eq!(*rtt, Duration::from_millis(10));
        }
    }

    #[test]
    fn serialization_delays_queue_back_to_back_packets() {
        // 3 packets of 1500B payload at 12 Mbps: ~1 ms serialization each,
        // so arrivals are spaced by the serialization time.
        let mut sim = Simulator::new(1);
        let prober = sim.add_node(Box::new(Prober {
            dst: Ipv4Addr::new(10, 0, 0, 2),
            count: 3,
            rtts: Vec::new(),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        let cfg = LinkConfig {
            rate_bps: 12_000_000,
            ..LinkConfig::delay_only(Duration::ZERO)
        };
        sim.connect((prober, 0), (echo, 0), cfg);
        sim.schedule_timer(prober, Instant::ZERO, 0);
        sim.run_until_idle();
        let rtts = &sim.node_ref::<Prober>(prober).rtts;
        // Packet i waits behind i-1 on the forward link; returns are also
        // serialized but echo responses are likewise spaced, so RTT grows
        // linearly.
        assert!(rtts[0] < rtts[1] && rtts[1] < rtts[2], "rtts: {rtts:?}");
    }

    #[test]
    fn unconnected_port_counts_unrouted() {
        struct Shouter;
        impl Node for Shouter {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) {
                let p = Packet::udp(
                    (Ipv4Addr::new(1, 1, 1, 1), 1),
                    (Ipv4Addr::new(2, 2, 2, 2), 2),
                    10,
                );
                ctx.send(9, p);
            }
        }
        let mut sim = Simulator::new(7);
        let n = sim.add_node(Box::new(Shouter));
        sim.schedule_timer(n, Instant::ZERO, 0);
        sim.run_until_idle();
        assert_eq!(sim.unrouted_packets(), 1);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulator::new(0);
        sim.run_until(Instant::from_secs(3));
        assert_eq!(sim.now(), Instant::from_secs(3));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<Duration> {
            let mut sim = Simulator::new(seed);
            let prober = sim.add_node(Box::new(Prober {
                dst: Ipv4Addr::new(10, 0, 0, 2),
                count: 20,
                rtts: Vec::new(),
            }));
            let echo = sim.add_node(Box::new(Echo { seen: 0 }));
            let cfg = LinkConfig {
                rate_bps: 1_000_000,
                jitter: Duration::from_micros(500),
                ..LinkConfig::delay_only(Duration::from_millis(2))
            };
            sim.connect((prober, 0), (echo, 0), cfg);
            sim.schedule_timer(prober, Instant::ZERO, 0);
            sim.run_until_idle();
            sim.node_ref::<Prober>(prober).rtts.clone()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "jitter should depend on the seed");
    }

    /// Node that arms a cancellable timer, then cancels it on the next
    /// (plain) timer, counting which expiries actually reached it.
    struct Canceller {
        armed: Option<TimerHandle>,
        fired: Vec<u64>,
    }
    impl Node for Canceller {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.fired.push(token);
            match token {
                0 => {
                    // Arm a guard far in the future, and a checkpoint before
                    // it that will cancel it.
                    self.armed = Some(ctx.schedule_in_cancellable(Duration::from_millis(100), 99));
                    ctx.schedule_in(Duration::from_millis(10), 1);
                }
                1 => {
                    let h = self.armed.take().expect("guard armed");
                    assert!(ctx.cancel_timer(h), "guard should still be pending");
                    assert!(!ctx.cancel_timer(h), "double cancel is a no-op");
                    // A fresh cancellable timer that is allowed to fire.
                    ctx.schedule_in_cancellable(Duration::from_millis(5), 2);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn cancelled_timers_never_reach_the_node() {
        let mut sim = Simulator::new(3);
        let n = sim.add_node(Box::new(Canceller {
            armed: None,
            fired: Vec::new(),
        }));
        sim.schedule_timer(n, Instant::ZERO, 0);
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Canceller>(n).fired, vec![0, 1, 2]);
        assert_eq!(sim.timer_fires_skipped(), 1);
        // The cancelled expiry still popped from the queue and is counted,
        // matching runs where stale guards dispatch as no-ops.
        assert_eq!(sim.events_processed(), 4);
    }
}
