//! The discrete-event simulator: nodes, ports, events and the run loop.
//!
//! A [`Simulator`] owns a set of [`Node`]s connected by unidirectional
//! [`Link`]s. Nodes react to packet arrivals and timers
//! through a [`Ctx`] handle that lets them send packets out of their ports
//! and schedule further timers. Event ordering is total — ties on the
//! timestamp break on a monotonically increasing sequence number — so every
//! run is deterministic given the seed.

use crate::fault::FaultPlan;
use crate::link::{Link, LinkConfig, LinkStats};
use crate::packet::Packet;
use crate::time::{Duration, Instant};
use rand::RngCore;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Identifier of a node within a simulator.
pub type NodeId = usize;
/// Identifier of a port on a node. Ports are just small integers; each crate
/// defines its own conventions (e.g. "port 0 faces the eNodeB").
pub type PortId = usize;

/// Behaviour of a simulated network element.
///
/// Nodes are single-threaded state machines: the simulator calls exactly one
/// of these hooks at a time. `Any` supertrait (plus Rust's dyn upcasting)
/// lets callers recover concrete node types after a run via
/// [`Simulator::node_ref`].
pub trait Node: Any {
    /// A packet arrived on `port`.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet);

    /// A timer scheduled with [`Ctx::schedule_at`]/[`Ctx::schedule_in`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

/// Deferred side effects produced by a node during a hook invocation.
enum Action {
    Send { port: PortId, pkt: Packet },
    Timer { at: Instant, token: u64 },
}

/// Handle given to nodes during event dispatch.
pub struct Ctx<'a> {
    now: Instant,
    node: NodeId,
    actions: &'a mut Vec<Action>,
    rng: &'a mut ChaCha8Rng,
    next_pkt_id: &'a mut u64,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// The id of the node being invoked.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Queue `pkt` for transmission out of `port`. If the port is not
    /// connected the packet is dropped and counted in
    /// [`Simulator::unrouted_packets`].
    pub fn send(&mut self, port: PortId, pkt: Packet) {
        self.actions.push(Action::Send { port, pkt });
    }

    /// Schedule a timer for this node at an absolute instant.
    pub fn schedule_at(&mut self, at: Instant, token: u64) {
        self.actions.push(Action::Timer { at, token });
    }

    /// Schedule a timer `d` from now.
    pub fn schedule_in(&mut self, d: Duration, token: u64) {
        let at = self.now + d;
        self.schedule_at(at, token);
    }

    /// The simulation-wide deterministic RNG.
    pub fn rng(&mut self) -> &mut impl RngCore {
        self.rng
    }

    /// Allocate a fresh, simulation-unique packet id.
    pub fn fresh_packet_id(&mut self) -> u64 {
        let id = *self.next_pkt_id;
        *self.next_pkt_id += 1;
        id
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// Packet delivery at (node, port).
    Arrive(NodeId, PortId),
    /// Timer expiry at node with a token.
    Timer(NodeId, u64),
}

struct Ev {
    at: Instant,
    seq: u64,
    kind: EvKind,
    pkt: Option<Packet>,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event network simulator.
pub struct Simulator {
    now: Instant,
    seq: u64,
    heap: BinaryHeap<Reverse<Ev>>,
    nodes: Vec<Option<Box<dyn Node>>>,
    links: HashMap<(NodeId, PortId), Link>,
    rng: ChaCha8Rng,
    next_pkt_id: u64,
    unrouted: u64,
    events_processed: u64,
}

impl Simulator {
    /// Create a simulator seeded for deterministic runs.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            now: Instant::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            nodes: Vec::new(),
            links: HashMap::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            next_pkt_id: 0,
            unrouted: 0,
            events_processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Packets sent out of unconnected ports (usually a topology bug).
    pub fn unrouted_packets(&self) -> u64 {
        self.unrouted
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(Some(node));
        self.nodes.len() - 1
    }

    /// Connect `from`'s `from_port` to `to`'s `to_port` with a unidirectional
    /// link.
    pub fn connect_simplex(
        &mut self,
        from: (NodeId, PortId),
        to: (NodeId, PortId),
        cfg: LinkConfig,
    ) {
        assert!(from.0 < self.nodes.len(), "unknown source node");
        assert!(to.0 < self.nodes.len(), "unknown destination node");
        let prev = self.links.insert(from, Link::new(cfg, to));
        assert!(prev.is_none(), "port {from:?} already connected");
    }

    /// Connect two nodes with a symmetric pair of links.
    pub fn connect(&mut self, a: (NodeId, PortId), b: (NodeId, PortId), cfg: LinkConfig) {
        self.connect_simplex(a, b, cfg.clone());
        self.connect_simplex(b, a, cfg);
    }

    /// Connect two nodes with asymmetric link configurations (e.g. LTE
    /// uplink vs downlink rates). `a_to_b` shapes traffic from `a` to `b`.
    pub fn connect_asymmetric(
        &mut self,
        a: (NodeId, PortId),
        b: (NodeId, PortId),
        a_to_b: LinkConfig,
        b_to_a: LinkConfig,
    ) {
        self.connect_simplex(a, b, a_to_b);
        self.connect_simplex(b, a, b_to_a);
    }

    /// Schedule an initial timer for a node (used to kick off sources).
    pub fn schedule_timer(&mut self, node: NodeId, at: Instant, token: u64) {
        let seq = self.next_seq();
        self.heap.push(Reverse(Ev {
            at,
            seq,
            kind: EvKind::Timer(node, token),
            pkt: None,
        }));
    }

    /// Inject a packet arriving at `(node, port)` at time `at`.
    pub fn inject_packet(&mut self, node: NodeId, port: PortId, at: Instant, pkt: Packet) {
        let seq = self.next_seq();
        self.heap.push(Reverse(Ev {
            at,
            seq,
            kind: EvKind::Arrive(node, port),
            pkt: Some(pkt),
        }));
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Run until the event queue drains or `limit` is reached, whichever is
    /// first. Returns the number of events processed by this call.
    pub fn run_until(&mut self, limit: Instant) -> u64 {
        let mut n = 0;
        while let Some(Reverse(ev)) = self.heap.peek() {
            if ev.at > limit {
                break;
            }
            let Reverse(ev) = self.heap.pop().expect("peeked event vanished");
            assert!(ev.at >= self.now, "event scheduled in the past");
            self.now = ev.at;
            self.dispatch(ev);
            n += 1;
        }
        // Even if no event lands exactly at `limit`, the clock advances.
        if self.now < limit {
            self.now = limit;
        }
        self.events_processed += n;
        n
    }

    /// Run until the event queue is fully drained.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut n = 0;
        while let Some(Reverse(ev)) = self.heap.pop() {
            assert!(ev.at >= self.now, "event scheduled in the past");
            self.now = ev.at;
            self.dispatch(ev);
            n += 1;
        }
        self.events_processed += n;
        n
    }

    fn dispatch(&mut self, ev: Ev) {
        let node_id = match ev.kind {
            EvKind::Arrive(n, _) | EvKind::Timer(n, _) => n,
        };
        let mut node = self.nodes[node_id]
            .take()
            .unwrap_or_else(|| panic!("node {node_id} re-entered during dispatch"));
        let mut actions = Vec::new();
        {
            let mut ctx = Ctx {
                now: self.now,
                node: node_id,
                actions: &mut actions,
                rng: &mut self.rng,
                next_pkt_id: &mut self.next_pkt_id,
            };
            match ev.kind {
                EvKind::Arrive(_, port) => {
                    let pkt = ev.pkt.expect("arrival without a packet");
                    node.on_packet(&mut ctx, port, pkt);
                }
                EvKind::Timer(_, token) => node.on_timer(&mut ctx, token),
            }
        }
        self.nodes[node_id] = Some(node);
        self.apply_actions(node_id, actions);
    }

    fn apply_actions(&mut self, node_id: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { port, pkt } => {
                    let now = self.now;
                    let Some(link) = self.links.get_mut(&(node_id, port)) else {
                        self.unrouted += 1;
                        continue;
                    };
                    let dest = link.to();
                    let deliveries = link.transmit(now, &pkt, &mut self.rng);
                    let dup = deliveries.duplicate.map(|at| (at, pkt.clone()));
                    if let Some(at) = deliveries.primary {
                        let seq = self.next_seq();
                        self.heap.push(Reverse(Ev {
                            at,
                            seq,
                            kind: EvKind::Arrive(dest.0, dest.1),
                            pkt: Some(pkt),
                        }));
                    }
                    if let Some((at, copy)) = dup {
                        let seq = self.next_seq();
                        self.heap.push(Reverse(Ev {
                            at,
                            seq,
                            kind: EvKind::Arrive(dest.0, dest.1),
                            pkt: Some(copy),
                        }));
                    }
                }
                Action::Timer { at, token } => {
                    let at = at.max(self.now);
                    let seq = self.next_seq();
                    self.heap.push(Reverse(Ev {
                        at,
                        seq,
                        kind: EvKind::Timer(node_id, token),
                        pkt: None,
                    }));
                }
            }
        }
    }

    /// Borrow a node as its concrete type (panics on wrong type or id).
    pub fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        let node = self.nodes[id].as_ref().expect("node taken");
        (node.as_ref() as &dyn Any)
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutably borrow a node as its concrete type.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        let node = self.nodes[id].as_mut().expect("node taken");
        (node.as_mut() as &mut dyn Any)
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    /// Attach a fault plan to the link leaving `(node, port)`. Replaces any
    /// existing plan; pass a fresh plan per link so each keeps its own RNG
    /// stream. Panics if the port is not connected.
    pub fn attach_fault_plan(&mut self, from: (NodeId, PortId), plan: FaultPlan) {
        let link = self
            .links
            .get_mut(&from)
            .expect("fault plan on unknown link");
        link.set_fault_plan(Some(plan));
    }

    /// Detach the fault plan (if any) from the link leaving `(node, port)`.
    pub fn clear_fault_plan(&mut self, from: (NodeId, PortId)) {
        if let Some(link) = self.links.get_mut(&from) {
            link.set_fault_plan(None);
        }
    }

    /// Statistics of the link leaving `(node, port)`, if connected.
    pub fn link_stats(&self, from: (NodeId, PortId)) -> Option<&LinkStats> {
        self.links.get(&from).map(|l| l.stats())
    }

    /// Mutate the configuration of an existing link (e.g. change its rate
    /// mid-experiment).
    pub fn reconfigure_link(&mut self, from: (NodeId, PortId), f: impl FnOnce(&mut LinkConfig)) {
        let link = self
            .links
            .get_mut(&from)
            .expect("reconfigure of unknown link");
        link.reconfigure(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    /// Node that reflects every packet back out the port it arrived on.
    struct Echo {
        seen: u32,
    }
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
            self.seen += 1;
            let mut back = pkt;
            std::mem::swap(&mut back.src, &mut back.dst);
            ctx.send(port, back);
        }
    }

    /// Node that sends `count` packets then records echo round-trip times.
    struct Prober {
        dst: Ipv4Addr,
        count: u32,
        rtts: Vec<Duration>,
    }
    impl Node for Prober {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
            self.rtts.push(ctx.now() - pkt.created);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            for _ in 0..self.count {
                let pkt =
                    Packet::icmp(Ipv4Addr::new(10, 0, 0, 1), self.dst, 56).with_created(ctx.now());
                ctx.send(0, pkt);
            }
        }
    }

    #[test]
    fn echo_round_trip_includes_both_directions() {
        let mut sim = Simulator::new(1);
        let prober = sim.add_node(Box::new(Prober {
            dst: Ipv4Addr::new(10, 0, 0, 2),
            count: 3,
            rtts: Vec::new(),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        sim.connect(
            (prober, 0),
            (echo, 0),
            LinkConfig::delay_only(Duration::from_millis(5)),
        );
        sim.schedule_timer(prober, Instant::ZERO, 0);
        sim.run_until_idle();

        assert_eq!(sim.node_ref::<Echo>(echo).seen, 3);
        let rtts = &sim.node_ref::<Prober>(prober).rtts;
        assert_eq!(rtts.len(), 3);
        for rtt in rtts {
            assert_eq!(*rtt, Duration::from_millis(10));
        }
    }

    #[test]
    fn serialization_delays_queue_back_to_back_packets() {
        // 3 packets of 1500B payload at 12 Mbps: ~1 ms serialization each,
        // so arrivals are spaced by the serialization time.
        let mut sim = Simulator::new(1);
        let prober = sim.add_node(Box::new(Prober {
            dst: Ipv4Addr::new(10, 0, 0, 2),
            count: 3,
            rtts: Vec::new(),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        let cfg = LinkConfig {
            rate_bps: 12_000_000,
            ..LinkConfig::delay_only(Duration::ZERO)
        };
        sim.connect((prober, 0), (echo, 0), cfg);
        sim.schedule_timer(prober, Instant::ZERO, 0);
        sim.run_until_idle();
        let rtts = &sim.node_ref::<Prober>(prober).rtts;
        // Packet i waits behind i-1 on the forward link; returns are also
        // serialized but echo responses are likewise spaced, so RTT grows
        // linearly.
        assert!(rtts[0] < rtts[1] && rtts[1] < rtts[2], "rtts: {rtts:?}");
    }

    #[test]
    fn unconnected_port_counts_unrouted() {
        struct Shouter;
        impl Node for Shouter {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) {
                let p = Packet::udp(
                    (Ipv4Addr::new(1, 1, 1, 1), 1),
                    (Ipv4Addr::new(2, 2, 2, 2), 2),
                    10,
                );
                ctx.send(9, p);
            }
        }
        let mut sim = Simulator::new(7);
        let n = sim.add_node(Box::new(Shouter));
        sim.schedule_timer(n, Instant::ZERO, 0);
        sim.run_until_idle();
        assert_eq!(sim.unrouted_packets(), 1);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulator::new(0);
        sim.run_until(Instant::from_secs(3));
        assert_eq!(sim.now(), Instant::from_secs(3));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<Duration> {
            let mut sim = Simulator::new(seed);
            let prober = sim.add_node(Box::new(Prober {
                dst: Ipv4Addr::new(10, 0, 0, 2),
                count: 20,
                rtts: Vec::new(),
            }));
            let echo = sim.add_node(Box::new(Echo { seen: 0 }));
            let cfg = LinkConfig {
                rate_bps: 1_000_000,
                jitter: Duration::from_micros(500),
                ..LinkConfig::delay_only(Duration::from_millis(2))
            };
            sim.connect((prober, 0), (echo, 0), cfg);
            sim.schedule_timer(prober, Instant::ZERO, 0);
            sim.run_until_idle();
            sim.node_ref::<Prober>(prober).rtts.clone()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "jitter should depend on the seed");
    }
}
