//! Sharded execution of the event loop: serial fast path and the
//! conservative-lookahead thread-per-shard driver.
//!
//! # Execution model
//!
//! The topology is partitioned by node region into `N` shards, each owning
//! an event wheel, the nodes assigned to it and every link *leaving* those
//! nodes. The parallel driver repeatedly:
//!
//! 1. finds `T`, the earliest pending event instant across all shards;
//! 2. lets every shard independently drain its window `[T, T + L)`, where
//!    the lookahead `L` is the minimum propagation delay of any link that
//!    crosses shards — jitter, serialization and injected-fault extras
//!    only ever *add* delay, so no event generated inside the window can
//!    land inside it on another shard;
//! 3. exchanges the buffered cross-shard arrivals (each was scheduled at
//!    `≥ T + L`, i.e. strictly after the window) into the destination
//!    wheels, then loops.
//!
//! # Determinism
//!
//! Within a window, shards interleave arbitrarily — but they share no
//! mutable state: nodes, per-node RNG/counters and outgoing links are
//! owned by exactly one shard, and event tie-break keys, RNG streams and
//! packet ids are all content-derived (see [`crate::sim::EvKey`]). The
//! wheel pops in `(at, key)` order regardless of insertion order, so the
//! exchange needs no sorting. The result: every observable outcome is
//! byte-identical to the `N = 1` serial run.
//!
//! # Safety
//!
//! This is the one module in the crate that uses `unsafe`: worker threads
//! index into shared slices ([`SlicePtr`]) under the partition discipline
//! that thread `s` only ever touches elements whose shard is `s` (nodes,
//! links, per-node meta) or slots reserved for it (its wheel, its
//! counters, its outbox row / inbox column). Windows are separated by
//! barriers, so accesses to an element from different phases never race.

#![allow(unsafe_code)]

use crate::fault::NodeOutageSet;
use crate::sim::{
    Action, Ctx, EvKey, EvKind, EvPayload, NodeId, NodeMeta, ShardCounters, Simulator,
};
use crate::time::{Duration, Instant};
use crate::wheel::TimerWheel;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A raw view over a `&mut [T]` that can be shared across worker threads.
/// `get_mut` hands out `&mut T` to disjoint elements; callers uphold the
/// partition discipline documented on the module.
pub(crate) struct SlicePtr<'a, T> {
    ptr: *mut T,
    len: usize,
    _pd: PhantomData<&'a mut [T]>,
}

impl<'a, T> SlicePtr<'a, T> {
    fn new(s: &'a mut [T]) -> SlicePtr<'a, T> {
        SlicePtr {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            _pd: PhantomData,
        }
    }

    /// # Safety
    /// The caller must guarantee no other live reference to element `i`
    /// (each element is owned by exactly one shard/phase at a time).
    #[inline]
    unsafe fn get_mut(&self, i: usize) -> &'a mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

impl<T> Clone for SlicePtr<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlicePtr<'_, T> {}
// Safety: SlicePtr is only a capability to reach elements; the partition
// discipline (one shard per element) provides the actual exclusion.
unsafe impl<T: Send> Send for SlicePtr<'_, T> {}
unsafe impl<T: Send> Sync for SlicePtr<'_, T> {}

/// Sense-counting spin barrier; windows are hundreds of microseconds of
/// simulated work, so parking would dominate.
struct SpinBarrier {
    count: AtomicUsize,
    gen: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> SpinBarrier {
        SpinBarrier {
            count: AtomicUsize::new(0),
            gen: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let g = self.gen.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Relaxed);
            self.gen.store(g.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.gen.load(Ordering::Acquire) == g {
                spins += 1;
                if spins < 1 << 10 {
                    std::hint::spin_loop();
                } else {
                    // More shards than cores, or a long tail: be polite.
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// A buffered cross-shard arrival awaiting the window exchange.
struct OutEntry {
    at: Instant,
    key: EvKey,
    payload: EvPayload,
}

/// Write handle into the flat `owner × dst` outbox matrix for one owner.
struct Outbox<'a> {
    cells: SlicePtr<'a, Vec<OutEntry>>,
    base: usize,
}

impl Outbox<'_> {
    #[inline]
    fn push(&mut self, dst: usize, e: OutEntry) {
        // Safety: cell `base + dst` belongs to this owner row; only the
        // owning worker writes it during a drain phase.
        unsafe { self.cells.get_mut(self.base + dst) }.push(e);
    }
}

/// One shard's execution lane: everything needed to pop, dispatch and
/// apply events for the nodes of one shard.
struct Lane<'a> {
    shard: u32,
    nodes: SlicePtr<'a, Option<Box<dyn crate::sim::Node>>>,
    links: SlicePtr<'a, Vec<Option<crate::link::Link>>>,
    meta: SlicePtr<'a, NodeMeta>,
    shard_of: &'a [u32],
    /// Compiled node outage schedules (read-only during a run; empty when
    /// no node-fault plan is attached). Per-node progress lives in
    /// [`NodeMeta`], which this lane owns for its shard's nodes.
    faults: &'a [NodeOutageSet],
    queue: &'a mut TimerWheel<EvPayload, EvKey>,
    ctr: &'a mut ShardCounters,
    outbox: Option<Outbox<'a>>,
    scratch: Vec<Action>,
    now: Instant,
}

impl Lane<'_> {
    /// Process every pending event with `at <= until` (including chains of
    /// events the processing itself schedules inside the window).
    fn drain_window(&mut self, until: Instant) {
        while let Some((at, _)) = self.queue.peek_key() {
            if at > until {
                break;
            }
            let (at, _, payload) = self.queue.pop().expect("peeked event vanished");
            self.dispatch(at, payload);
        }
    }

    fn dispatch(&mut self, at: Instant, ev: EvPayload) {
        assert!(at >= self.now, "event scheduled in the past");
        self.now = at;
        self.ctr.last_at = at;
        self.ctr.events += 1;
        let node_id = ev.node();
        debug_assert_eq!(
            self.shard_of[node_id], self.shard,
            "event routed to the wrong shard"
        );
        // Cancelled guard timers die here, before the node is touched.
        if let EvKind::Timer(_, _, Some(guard), _) = ev.kind {
            // Safety: node (and its meta) belongs to this shard.
            let m = unsafe { self.meta.get_mut(node_id) };
            if !m.timers.invalidate(guard) {
                self.ctr.timer_skipped += 1;
                return;
            }
        }
        // Node-lifecycle faults: a down node rejects the event; a
        // completed crash-restart erases the node's state first.
        let mut tx_blocked = false;
        if !self.faults.is_empty()
            && self
                .faults
                .get(node_id)
                .is_some_and(|s| !s.windows.is_empty())
        {
            match self.fault_gate(node_id, at, &ev.kind) {
                FaultGate::Reject => return,
                FaultGate::DeliverTxBlocked => tx_blocked = true,
                FaultGate::Deliver => {}
            }
        }
        // Safety: node belongs to this shard; it is taken out for the
        // duration of the hook so re-entry panics.
        let slot = unsafe { self.nodes.get_mut(node_id) };
        let mut node = slot
            .take()
            .unwrap_or_else(|| panic!("node {node_id} re-entered during dispatch"));
        let mut actions = std::mem::take(&mut self.scratch);
        {
            // Safety: meta belongs to this shard; the node itself was moved
            // out above so no aliasing with the hook's `&mut self`.
            let m = unsafe { self.meta.get_mut(node_id) };
            let mut ctx = Ctx {
                now: at,
                node: node_id,
                actions: &mut actions,
                rng: &mut m.rng,
                next_pkt_id: &mut m.pkt_ctr,
                timers: &mut m.timers,
            };
            match ev.kind {
                EvKind::Arrive(_, port) => {
                    self.ctr.arrivals += 1;
                    let pkt = ev.pkt.expect("arrival without a packet");
                    node.on_packet(&mut ctx, port, pkt);
                }
                EvKind::Timer(_, token, _, _) => node.on_timer(&mut ctx, token),
            }
        }
        // Safety: same element as above; the previous borrow ended.
        *unsafe { self.nodes.get_mut(node_id) } = Some(node);
        self.apply_actions(node_id, &mut actions, tx_blocked);
        self.scratch = actions;
    }

    /// Decide whether an event for a fault-targeted node is delivered. Lazily
    /// advances the node through its outage schedule: a crash-restart window
    /// that has fully passed erases the node's state (and bumps its timer
    /// epoch) before anything else reaches it. All decisions depend only on
    /// the event's own `(node, at, kind)` — never on other shards — so the
    /// outcome is identical at every shard count.
    fn fault_gate(&mut self, node_id: NodeId, at: Instant, kind: &EvKind) -> FaultGate {
        let windows = &self.faults[node_id].windows;
        // Safety: the node's meta belongs to this shard.
        let m = unsafe { self.meta.get_mut(node_id) };
        // Complete every window that has fully passed.
        while (m.fault_pos as usize) < windows.len() && windows[m.fault_pos as usize].until <= at {
            let w = windows[m.fault_pos as usize];
            m.fault_pos += 1;
            if w.erase {
                m.epoch = m.epoch.wrapping_add(1);
                self.ctr.node_restarts += 1;
                // Safety: node belongs to this shard; it is taken out for
                // the duration of the restart hook only.
                let slot = unsafe { self.nodes.get_mut(node_id) };
                let mut node = slot
                    .take()
                    .unwrap_or_else(|| panic!("node {node_id} re-entered during restart"));
                node.on_restart();
                *unsafe { self.nodes.get_mut(node_id) } = Some(node);
            }
        }
        let in_window = windows
            .get(m.fault_pos as usize)
            .copied()
            .filter(|w| w.from <= at);
        if let Some(w) = in_window {
            debug_assert!(at < w.until);
            if w.erase {
                // Crashed: nothing reaches the node, timers included.
                match kind {
                    EvKind::Arrive(..) => self.ctr.node_rejected += 1,
                    EvKind::Timer(..) => self.ctr.node_timer_dropped += 1,
                }
                return FaultGate::Reject;
            }
            // Partitioned: deliveries bounce; timers still fire below, but
            // whatever they send is discarded.
            if matches!(kind, EvKind::Arrive(..)) {
                self.ctr.node_rejected += 1;
                return FaultGate::Reject;
            }
        }
        // A timer armed before the node's last crash-restart never fires.
        if let EvKind::Timer(_, _, _, armed_epoch) = *kind {
            if armed_epoch != m.epoch {
                self.ctr.node_timer_dropped += 1;
                return FaultGate::Reject;
            }
        }
        if in_window.is_some() {
            FaultGate::DeliverTxBlocked
        } else {
            FaultGate::Deliver
        }
    }

    /// Content-derived key for the next event emitted by `src`.
    #[inline]
    fn next_key(&mut self, src: NodeId) -> EvKey {
        // Safety: src is the node just dispatched on this shard.
        let m = unsafe { self.meta.get_mut(src) };
        let ctr = m.ev_ctr;
        m.ev_ctr += 1;
        EvKey::new(src as u32, ctr)
    }

    fn push_arrival(&mut self, src: NodeId, at: Instant, dest: (NodeId, usize), pkt: Packet) {
        let key = self.next_key(src);
        let payload = EvPayload {
            kind: EvKind::Arrive(dest.0, dest.1),
            pkt: Some(pkt),
        };
        let dst_shard = self.shard_of[dest.0];
        if dst_shard == self.shard {
            self.queue.schedule(at, key, payload);
        } else {
            self.ctr.xsent += 1;
            self.outbox
                .as_mut()
                .expect("cross-shard arrival without an outbox")
                .push(dst_shard as usize, OutEntry { at, key, payload });
        }
    }

    fn apply_actions(&mut self, node_id: NodeId, actions: &mut Vec<Action>, tx_blocked: bool) {
        for action in actions.drain(..) {
            match action {
                Action::Send { port, pkt } => {
                    if tx_blocked {
                        // The emitting node is partitioned: its timers run
                        // but nothing it sends reaches the network.
                        self.ctr.node_tx_dropped += 1;
                        drop(pkt);
                        continue;
                    }
                    let now = self.now;
                    // Safety: the link table row of the dispatched node
                    // belongs to this shard (links are owned by their
                    // source endpoint).
                    let ports = unsafe { self.links.get_mut(node_id) };
                    let Some(link) = ports.get_mut(port).and_then(Option::as_mut) else {
                        self.ctr.unrouted += 1;
                        continue;
                    };
                    let dest = link.to();
                    let deliveries = link.transmit(now, &pkt);
                    match (deliveries.primary, deliveries.duplicate) {
                        (Some(at), None) => self.push_arrival(node_id, at, dest, pkt),
                        (Some(at), Some(dup_at)) => {
                            // Payloads are shared buffers, so the duplicate
                            // is a header-only copy.
                            self.push_arrival(node_id, at, dest, pkt.clone());
                            self.push_arrival(node_id, dup_at, dest, pkt);
                        }
                        // Primary dropped: the duplicate takes the original
                        // packet, no clone needed.
                        (None, Some(dup_at)) => self.push_arrival(node_id, dup_at, dest, pkt),
                        (None, None) => {}
                    }
                }
                Action::Timer { at, token, guard } => {
                    let at = at.max(self.now);
                    let key = self.next_key(node_id);
                    // Safety: the arming node's meta belongs to this shard.
                    let epoch = unsafe { self.meta.get_mut(node_id) }.epoch;
                    // Timers always fire on the arming node's own shard.
                    self.queue.schedule(
                        at,
                        key,
                        EvPayload {
                            kind: EvKind::Timer(node_id, token, guard, epoch),
                            pkt: None,
                        },
                    );
                }
            }
        }
    }
}

use crate::packet::Packet;

/// Verdict of [`Lane::fault_gate`] for one event.
enum FaultGate {
    /// Deliver normally.
    Deliver,
    /// Deliver (a partitioned node's timer), but discard its sends.
    DeliverTxBlocked,
    /// Drop the event; counters were already updated.
    Reject,
}

/// Serial driver: one lane over the whole simulator. Runs every pending
/// event with `at <= limit`; leaves `sim.now` at the last dispatched
/// instant. Returns the number of events processed.
pub(crate) fn run_serial(sim: &mut Simulator, limit: Instant) -> u64 {
    let scratch = std::mem::take(&mut sim.scratch);
    let before = sim.counters[0].events;
    let mut lane = Lane {
        shard: 0,
        nodes: SlicePtr::new(&mut sim.nodes),
        links: SlicePtr::new(&mut sim.links),
        meta: SlicePtr::new(&mut sim.meta),
        shard_of: &sim.shard_of,
        faults: &sim.node_faults,
        queue: &mut sim.queues[0],
        ctr: &mut sim.counters[0],
        outbox: None,
        scratch,
        now: sim.now,
    };
    lane.drain_window(limit);
    let now = lane.now;
    let scratch = std::mem::take(&mut lane.scratch);
    drop(lane);
    sim.scratch = scratch;
    sim.now = now;
    sim.counters[0].events - before
}

/// Compute (and cache) the conservative lookahead: the minimum propagation
/// delay over links whose endpoints live on different shards. Panics on a
/// zero-delay cross-shard link — the window would be empty and the run
/// could never make progress.
fn ensure_lookahead(sim: &mut Simulator) -> Duration {
    if let Some(l) = sim.lookahead {
        return l;
    }
    let mut min = Duration::from_nanos(u64::MAX);
    for (src, ports) in sim.links.iter().enumerate() {
        for link in ports.iter().flatten() {
            let dst = link.to().0;
            if sim.shard_of[src] != sim.shard_of[dst] {
                let d = link.delay();
                assert!(
                    d > Duration::ZERO,
                    "cross-shard link {src} -> {dst} has zero propagation delay; \
                     conservative lookahead would be zero (co-locate both endpoints \
                     in one region or give the link a positive delay)"
                );
                min = min.min(d);
            }
        }
    }
    sim.lookahead = Some(min);
    min
}

/// Shared raw views over the simulator's partitioned state: everything a
/// shard driver needs to build its [`Lane`] on demand.
struct LaneParts<'a> {
    nodes: SlicePtr<'a, Option<Box<dyn crate::sim::Node>>>,
    links: SlicePtr<'a, Vec<Option<crate::link::Link>>>,
    meta: SlicePtr<'a, NodeMeta>,
    shard_of: &'a [u32],
    faults: &'a [NodeOutageSet],
    queues: SlicePtr<'a, TimerWheel<EvPayload, EvKey>>,
    counters: SlicePtr<'a, ShardCounters>,
    out: SlicePtr<'a, Vec<OutEntry>>,
    nsh: usize,
}

impl<'a> LaneParts<'a> {
    /// # Safety
    /// The caller must be shard `s`'s current (sole) driver: wheel `s`,
    /// counters `s` and outbox row `s` must not be aliased elsewhere.
    unsafe fn lane(self, s: usize, scratch: Vec<Action>, now: Instant) -> Lane<'a> {
        Lane {
            shard: s as u32,
            nodes: self.nodes,
            links: self.links,
            meta: self.meta,
            shard_of: self.shard_of,
            faults: self.faults,
            queue: self.queues.get_mut(s),
            ctr: self.counters.get_mut(s),
            outbox: Some(Outbox {
                cells: self.out,
                base: s * self.nsh,
            }),
            scratch,
            now,
        }
    }
}

impl<'a> Clone for LaneParts<'a> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a> Copy for LaneParts<'a> {}

/// Parallel driver: conservative-lookahead windows over the shards that
/// own nodes. Runs every pending event with `at <= limit`; results are
/// byte-identical to [`run_serial`] at any shard count. Returns the
/// number of events processed.
///
/// Only *active* shards (those owning at least one node) take part in
/// the window protocol — a node-less shard can neither produce nor
/// receive events, so `--shards 8` on a two-region topology pays for
/// two lanes, not eight. When the machine has a single core (or a
/// single shard is active) the same windowed algorithm runs on one
/// thread with no barriers: the event order is fixed by `(at, key)`,
/// not by which thread drains which lane, so the serial interleaving is
/// byte-identical to the threaded one.
pub(crate) fn run_parallel(sim: &mut Simulator, limit: Instant) -> u64 {
    let look = ensure_lookahead(sim).nanos();
    let nsh = sim.shards();
    let before: u64 = sim.counters.iter().map(|c| c.events).sum();
    let limit_n = limit.nanos();
    let start_now = sim.now;

    let mut owned = vec![false; nsh];
    for &s in &sim.shard_of {
        owned[s as usize] = true;
    }
    let active: Vec<usize> = (0..nsh).filter(|&s| owned[s]).collect();

    let shard_of: &[u32] = &sim.shard_of;
    let faults: &[NodeOutageSet] = &sim.node_faults;
    let nodes = SlicePtr::new(&mut sim.nodes);
    let links = SlicePtr::new(&mut sim.links);
    let meta = SlicePtr::new(&mut sim.meta);
    let queues = SlicePtr::new(&mut sim.queues);
    let counters = SlicePtr::new(&mut sim.counters);
    let mut outcells: Vec<Vec<OutEntry>> = (0..nsh * nsh).map(|_| Vec::new()).collect();
    let out = SlicePtr::new(&mut outcells);
    let parts = LaneParts {
        nodes,
        links,
        meta,
        shard_of,
        faults,
        queues,
        counters,
        out,
        nsh,
    };

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    if active.len() == 1 {
        // All nodes on one shard: no cross-shard traffic is possible, so
        // the window machinery degenerates to a straight drain.
        let s = active[0];
        // Safety: single-threaded, sole driver of shard `s`.
        let mut lane = unsafe { parts.lane(s, Vec::new(), start_now) };
        lane.drain_window(limit);
    } else if !active.is_empty() && cores == 1 {
        run_windows_serial(parts, &active, look, limit_n, start_now);
    } else if !active.is_empty() {
        run_windows_threaded(parts, &active, look, limit_n, start_now);
    }

    let last = sim
        .counters
        .iter()
        .map(|c| c.last_at)
        .max()
        .unwrap_or(start_now);
    if last > sim.now {
        sim.now = last;
    }
    let after: u64 = sim.counters.iter().map(|c| c.events).sum();
    after - before
}

/// The windowed algorithm on one thread: drain every active lane's
/// window, exchange, repeat. Identical event order to the threaded
/// driver (lanes share no state and the order is key-derived), none of
/// the barrier or thread-spawn overhead — the right shape whenever the
/// OS would serialize the lanes anyway.
fn run_windows_serial(
    parts: LaneParts<'_>,
    active: &[usize],
    look: u64,
    limit_n: u64,
    start_now: Instant,
) {
    let mut nows = vec![start_now; active.len()];
    let mut scratches: Vec<Vec<Action>> = (0..active.len()).map(|_| Vec::new()).collect();
    loop {
        let mut t = u64::MAX;
        for &s in active {
            // Safety: single-threaded; exclusive access to every wheel.
            if let Some((at, _)) = unsafe { parts.queues.get_mut(s) }.peek_key() {
                t = t.min(at.nanos());
            }
        }
        if t == u64::MAX || t > limit_n {
            break;
        }
        let until = Instant::from_nanos(t.saturating_add(look.saturating_sub(1)).min(limit_n));
        for (i, &s) in active.iter().enumerate() {
            // Safety: single-threaded, sole driver of shard `s`; the lane
            // is dropped before the next one is built.
            let mut lane = unsafe { parts.lane(s, std::mem::take(&mut scratches[i]), nows[i]) };
            lane.drain_window(until);
            nows[i] = lane.now;
            scratches[i] = std::mem::take(&mut lane.scratch);
        }
        // Exchange: every window's cross-shard arrivals land at
        // `>= t + look`, strictly after the window just drained.
        for &w in active {
            for &s in active {
                // Safety: single-threaded; cells and destination wheels
                // are touched one at a time.
                let cell = unsafe { parts.out.get_mut(w * parts.nsh + s) };
                for e in cell.drain(..) {
                    unsafe { parts.counters.get_mut(s) }.xrecv += 1;
                    unsafe { parts.queues.get_mut(s) }.schedule(e.at, e.key, e.payload);
                }
            }
        }
    }
}

/// Thread-per-active-shard windows, synchronized with a spin barrier.
fn run_windows_threaded(
    parts: LaneParts<'_>,
    active: &[usize],
    look: u64,
    limit_n: u64,
    start_now: Instant,
) {
    let mins: Vec<AtomicU64> = (0..active.len())
        .map(|_| AtomicU64::new(u64::MAX))
        .collect();
    let barrier = SpinBarrier::new(active.len());
    let mins = &mins;
    let barrier = &barrier;

    std::thread::scope(|scope| {
        let worker = move |i: usize| {
            let s = active[i];
            // Safety: this worker is shard `s`'s sole driver; node/link/
            // meta access inside the lane follows the shard partition.
            let mut lane = unsafe { parts.lane(s, Vec::new(), start_now) };
            loop {
                let local = lane.queue.peek_key().map_or(u64::MAX, |(at, _)| at.nanos());
                mins[i].store(local, Ordering::Release);
                barrier.wait();
                // Every worker computes the same `t`, so they all either
                // enter the window or leave the loop together.
                let t = mins
                    .iter()
                    .map(|m| m.load(Ordering::Acquire))
                    .min()
                    .expect("at least one shard");
                if t == u64::MAX || t > limit_n {
                    break;
                }
                let until =
                    Instant::from_nanos(t.saturating_add(look.saturating_sub(1)).min(limit_n));
                lane.drain_window(until);
                barrier.wait();
                // Exchange: pull this shard's inbox column. Each window's
                // cross-shard arrivals land at `>= t + look`, strictly
                // after the window just drained.
                for &w in active {
                    // Safety: column `s` cells are read by worker `s` only,
                    // in the exchange phase only.
                    let cell = unsafe { parts.out.get_mut(w * parts.nsh + s) };
                    for e in cell.drain(..) {
                        lane.ctr.xrecv += 1;
                        lane.queue.schedule(e.at, e.key, e.payload);
                    }
                }
                // No third barrier: nobody can re-enter a drain phase (and
                // write outboxes again) until this worker passes the next
                // window's min barrier.
            }
        };
        for i in 1..active.len() {
            scope.spawn(move || worker(i));
        }
        worker(0);
    });
}
