//! Small statistics helpers for experiment harnesses: summary statistics,
//! percentiles and empirical CDFs.

use crate::time::Duration;

/// A growable series of f64 samples with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Series {
    samples: Vec<f64>,
}

impl Series {
    /// Empty series.
    pub fn new() -> Series {
        Series::default()
    }

    /// Build from an iterator of samples (also available through the
    /// `FromIterator` impl / `collect()`).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = f64>) -> Series {
        Series {
            samples: iter.into_iter().collect(),
        }
    }

    /// Build from a slice of durations, in milliseconds.
    pub fn from_durations_ms(durations: &[Duration]) -> Series {
        Series::from_iter(durations.iter().map(|d| d.millis_f64()))
    }

    /// Add a sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Arithmetic mean (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum sample (0 for an empty series).
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .pipe_finite()
    }

    /// Maximum sample (0 for an empty series).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// Population standard deviation (0 for fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100) by nearest-rank on the sorted
    /// samples. Returns 0 for an empty series.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Empirical CDF as (value, cumulative-fraction) points, sorted by value.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = sorted.len() as f64;
        sorted
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n))
            .collect()
    }
}

impl FromIterator<f64> for Series {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Series {
        Series {
            samples: iter.into_iter().collect(),
        }
    }
}

/// Replace infinities (empty-fold sentinels) by zero.
trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_is_all_zeros() {
        let s = Series::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert!(s.cdf().is_empty());
    }

    #[test]
    fn summary_statistics() {
        let s = Series::from_iter([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.len(), 4);
        assert!((s.stddev() - 1.118).abs() < 0.001);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = Series::from_iter((1..=100).map(|v| v as f64));
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert!((s.median() - 50.0).abs() <= 1.0);
        assert!((s.percentile(95.0) - 95.0).abs() <= 1.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let s = Series::from_iter([5.0, 1.0, 3.0, 2.0, 4.0]);
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn from_durations_converts_to_ms() {
        let s = Series::from_durations_ms(&[Duration::from_millis(5), Duration::from_micros(1500)]);
        assert_eq!(s.samples(), &[5.0, 1.5]);
    }
}
