//! IPv4 prefix routing and a generic router node.

use crate::packet::Packet;
use crate::sim::{Ctx, Node, PortId};
use crate::time::{Duration, Instant};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// An IPv4 network prefix, e.g. `10.1.0.0/16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Net {
    addr: Ipv4Addr,
    prefix_len: u8,
}

impl Ipv4Net {
    /// Build a prefix; the host bits of `addr` are masked off.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Ipv4Net {
        assert!(prefix_len <= 32, "prefix length out of range");
        let mask = Self::mask_of(prefix_len);
        Ipv4Net {
            addr: Ipv4Addr::from(u32::from(addr) & mask),
            prefix_len,
        }
    }

    /// The all-addresses prefix `0.0.0.0/0`.
    pub const fn default_route() -> Ipv4Net {
        Ipv4Net {
            addr: Ipv4Addr::UNSPECIFIED,
            prefix_len: 0,
        }
    }

    /// A single-host prefix (`/32`).
    pub fn host(addr: Ipv4Addr) -> Ipv4Net {
        Ipv4Net::new(addr, 32)
    }

    fn mask_of(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len as u32)
        }
    }

    /// Does `addr` fall within this prefix?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        let mask = Self::mask_of(self.prefix_len);
        (u32::from(addr) & mask) == u32::from(self.addr)
    }

    /// Prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Network address.
    pub fn network(&self) -> Ipv4Addr {
        self.addr
    }
}

/// A routing table mapping destination prefixes to output ports, with
/// longest-prefix-match semantics.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: Vec<(Ipv4Net, PortId)>,
}

impl RouteTable {
    /// Empty table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Add a route. Later insertions of the same prefix override earlier ones.
    pub fn add(&mut self, net: Ipv4Net, port: PortId) -> &mut Self {
        self.routes.retain(|(n, _)| *n != net);
        self.routes.push((net, port));
        // Keep sorted by descending prefix length for longest-prefix match.
        self.routes
            .sort_by_key(|&(net, _)| std::cmp::Reverse(net.prefix_len()));
        self
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<PortId> {
        self.routes
            .iter()
            .find(|(net, _)| net.contains(dst))
            .map(|&(_, port)| port)
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// Timer token used by [`Router`] for packet release events.
const TOKEN_RELEASE: u64 = 1;

/// A store-and-forward router with an optional per-packet processing cost
/// (modelling a software data plane) applied before forwarding.
pub struct Router {
    table: RouteTable,
    /// CPU time spent per packet before it can be forwarded (serial).
    per_packet_cost: Duration,
    /// Completion watermark of the serial processor.
    busy_until: Instant,
    /// Maximum packets allowed to be waiting for processing.
    proc_queue_limit: usize,
    /// Packets waiting for their processing-completion timer, FIFO.
    deferred: VecDeque<Packet>,
    /// Forwarded packet count.
    pub forwarded: u64,
    /// Packets dropped for lack of a route.
    pub no_route: u64,
    /// Packets dropped because the processing queue overflowed.
    pub proc_drops: u64,
}

impl Router {
    /// Router with zero processing cost (pure forwarding).
    pub fn new(table: RouteTable) -> Router {
        Router {
            table,
            per_packet_cost: Duration::ZERO,
            busy_until: Instant::ZERO,
            proc_queue_limit: usize::MAX,
            deferred: VecDeque::new(),
            forwarded: 0,
            no_route: 0,
            proc_drops: 0,
        }
    }

    /// Router that spends `cost` of serial CPU per packet with a bounded
    /// processing queue (`limit` packets).
    pub fn with_processing(table: RouteTable, cost: Duration, limit: usize) -> Router {
        Router {
            per_packet_cost: cost,
            proc_queue_limit: limit,
            ..Router::new(table)
        }
    }

    /// Replace the routing table.
    pub fn set_table(&mut self, table: RouteTable) {
        self.table = table;
    }

    fn forward(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        match self.table.lookup(pkt.dst) {
            Some(port) => {
                self.forwarded += 1;
                ctx.send(port, pkt);
            }
            None => self.no_route += 1,
        }
    }
}

impl Node for Router {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        if self.per_packet_cost == Duration::ZERO {
            self.forward(ctx, pkt);
            return;
        }
        if self.deferred.len() >= self.proc_queue_limit {
            self.proc_drops += 1;
            return;
        }
        let start = self.busy_until.max(ctx.now());
        let done = start + self.per_packet_cost;
        self.busy_until = done;
        self.deferred.push_back(pkt);
        ctx.schedule_at(done, TOKEN_RELEASE);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_RELEASE {
            return;
        }
        if let Some(pkt) = self.deferred.pop_front() {
            self.forward(ctx, pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::sim::Simulator;
    use crate::traffic::Sink;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn prefix_contains_masks_host_bits() {
        let net = Ipv4Net::new(ip(10, 1, 2, 3), 16);
        assert_eq!(net.network(), ip(10, 1, 0, 0));
        assert!(net.contains(ip(10, 1, 200, 9)));
        assert!(!net.contains(ip(10, 2, 0, 1)));
        assert!(Ipv4Net::default_route().contains(ip(8, 8, 8, 8)));
        assert!(Ipv4Net::host(ip(1, 2, 3, 4)).contains(ip(1, 2, 3, 4)));
        assert!(!Ipv4Net::host(ip(1, 2, 3, 4)).contains(ip(1, 2, 3, 5)));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RouteTable::new();
        t.add(Ipv4Net::default_route(), 0);
        t.add(Ipv4Net::new(ip(10, 0, 0, 0), 8), 1);
        t.add(Ipv4Net::new(ip(10, 9, 0, 0), 16), 2);
        assert_eq!(t.lookup(ip(8, 8, 8, 8)), Some(0));
        assert_eq!(t.lookup(ip(10, 1, 1, 1)), Some(1));
        assert_eq!(t.lookup(ip(10, 9, 1, 1)), Some(2));
    }

    #[test]
    fn re_adding_prefix_overrides() {
        let mut t = RouteTable::new();
        t.add(Ipv4Net::default_route(), 0);
        t.add(Ipv4Net::default_route(), 3);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip(1, 1, 1, 1)), Some(3));
    }

    #[test]
    fn router_forwards_by_destination() {
        let mut sim = Simulator::new(5);
        let mut table = RouteTable::new();
        table.add(Ipv4Net::new(ip(10, 1, 0, 0), 16), 1);
        table.add(Ipv4Net::new(ip(10, 2, 0, 0), 16), 2);
        let router = sim.add_node(Box::new(Router::new(table)));
        let sink1 = sim.add_node(Box::new(Sink::new()));
        let sink2 = sim.add_node(Box::new(Sink::new()));
        sim.connect(
            (router, 1),
            (sink1, 0),
            LinkConfig::delay_only(Duration::from_millis(1)),
        );
        sim.connect(
            (router, 2),
            (sink2, 0),
            LinkConfig::delay_only(Duration::from_millis(1)),
        );

        let p1 = Packet::udp((ip(10, 9, 0, 1), 1), (ip(10, 1, 0, 5), 2), 100);
        let p2 = Packet::udp((ip(10, 9, 0, 1), 1), (ip(10, 2, 0, 5), 2), 100);
        let p3 = Packet::udp((ip(10, 9, 0, 1), 1), (ip(9, 9, 9, 9), 2), 100);
        sim.inject_packet(router, 0, Instant::ZERO, p1);
        sim.inject_packet(router, 0, Instant::ZERO, p2);
        sim.inject_packet(router, 0, Instant::ZERO, p3);
        sim.run_until_idle();

        assert_eq!(sim.node_ref::<Sink>(sink1).packets(), 1);
        assert_eq!(sim.node_ref::<Sink>(sink2).packets(), 1);
        let r = sim.node_ref::<Router>(router);
        assert_eq!(r.forwarded, 2);
        assert_eq!(r.no_route, 1);
    }

    #[test]
    fn processing_cost_serializes_packets() {
        // 1 ms per packet: 3 packets injected simultaneously leave at
        // t = 1, 2, 3 ms.
        let mut sim = Simulator::new(5);
        let mut table = RouteTable::new();
        table.add(Ipv4Net::default_route(), 1);
        let router = sim.add_node(Box::new(Router::with_processing(
            table,
            Duration::from_millis(1),
            10,
        )));
        let sink = sim.add_node(Box::new(Sink::new()));
        sim.connect(
            (router, 1),
            (sink, 0),
            LinkConfig::delay_only(Duration::ZERO),
        );
        for _ in 0..3 {
            let p = Packet::udp((ip(1, 1, 1, 1), 1), (ip(2, 2, 2, 2), 2), 10);
            sim.inject_packet(router, 0, Instant::ZERO, p);
        }
        sim.run_until_idle();
        let s = sim.node_ref::<Sink>(sink);
        assert_eq!(s.packets(), 3);
        assert_eq!(s.last_arrival(), Some(Instant::from_millis(3)));
    }

    #[test]
    fn processing_queue_overflow_drops() {
        let mut sim = Simulator::new(5);
        let mut table = RouteTable::new();
        table.add(Ipv4Net::default_route(), 1);
        let router = sim.add_node(Box::new(Router::with_processing(
            table,
            Duration::from_millis(1),
            2,
        )));
        let sink = sim.add_node(Box::new(Sink::new()));
        sim.connect(
            (router, 1),
            (sink, 0),
            LinkConfig::delay_only(Duration::ZERO),
        );
        for _ in 0..5 {
            let p = Packet::udp((ip(1, 1, 1, 1), 1), (ip(2, 2, 2, 2), 2), 10);
            sim.inject_packet(router, 0, Instant::ZERO, p);
        }
        sim.run_until_idle();
        assert_eq!(sim.node_ref::<Sink>(sink).packets(), 2);
        assert_eq!(sim.node_ref::<Router>(router).proc_drops, 3);
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn bad_prefix_len_panics() {
        let _ = Ipv4Net::new(ip(1, 1, 1, 1), 33);
    }
}
