//! A timing-wheel (calendar-queue) priority queue for the event scheduler.
//!
//! The simulator's workload is dominated by near-future events: link
//! serialization completions microseconds ahead, guard timers tens of
//! milliseconds ahead. A binary heap pays `O(log n)` per operation on that
//! workload; the wheel pays amortized `O(1)` by hashing events into
//! fixed-width time slots and only heap-ordering the (tiny) population of
//! the slot currently being drained.
//!
//! Structure:
//!
//! * a ring of [`SLOTS`] buckets, each [`SLOT_WIDTH`] of simulated time
//!   wide (the ring horizon is `SLOTS * SLOT_WIDTH` ≈ 268 ms);
//! * `cur`, a small binary heap holding every pending event at or before
//!   the cursor bucket — the only place fine-grained `(at, seq)` ordering
//!   is enforced;
//! * an occupancy bitmap so advancing the cursor over empty slots costs a
//!   couple of word scans rather than a per-slot walk;
//! * an overflow heap for events beyond the ring horizon, migrated into
//!   the ring lazily as the cursor approaches them.
//!
//! Ordering is **exactly** the total order of a `BinaryHeap<Reverse<(at,
//! seq)>>`: every event in `cur` is in a bucket ≤ cursor, every ring event
//! in a bucket strictly after the cursor, and every overflow event beyond
//! the ring horizon, so the minimum of `cur` is always the global minimum.
//! This invariant holds for *any* insertion sequence (even instants before
//! the cursor, which are routed into `cur`), which is what the
//! scheduler-equivalence property test in `tests/prop.rs` exercises.

use crate::time::Instant;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the slot width in nanoseconds (2^16 ns = 65.536 µs per slot).
const SLOT_SHIFT: u32 = 16;
/// Number of ring slots; must be a power of two.
const SLOTS: usize = 4096;
/// Occupancy bitmap words.
const WORDS: usize = SLOTS / 64;
/// Width of one slot in simulated time.
pub const SLOT_WIDTH: u64 = 1 << SLOT_SHIFT;

/// A scheduled entry: the `(at, key)` pair plus an arbitrary payload. The
/// tie-break key `K` is `u64` for the classic global-sequence ordering, or
/// any other totally ordered copyable key (the sharded engine uses a
/// content-derived `(source, counter)` key so ordering is identical at
/// every shard count).
struct Entry<T, K> {
    at: Instant,
    seq: K,
    item: T,
}

impl<T, K: Ord + Copy> PartialEq for Entry<T, K> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T, K: Ord + Copy> Eq for Entry<T, K> {}
impl<T, K: Ord + Copy> PartialOrd for Entry<T, K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T, K: Ord + Copy> Ord for Entry<T, K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A timing-wheel priority queue over `(Instant, key)` pairs.
///
/// Pops events in strictly ascending `(at, key)` order — byte-identical to
/// a `BinaryHeap<Reverse<(at, key, ..)>>` — while keeping insert and pop
/// amortized `O(1)` for the near-future events that dominate simulation
/// workloads.
pub struct TimerWheel<T, K: Ord + Copy = u64> {
    /// Bucket index the cursor points at; all events in buckets ≤ cursor
    /// live in `cur`.
    cursor: u64,
    /// Heap of events due in or before the cursor bucket.
    cur: BinaryHeap<Reverse<Entry<T, K>>>,
    /// The ring: unsorted per-slot event lists for buckets in
    /// `(cursor, cursor + SLOTS)`.
    slots: Box<[Vec<Entry<T, K>>]>,
    /// One bit per slot: set iff the slot list is non-empty.
    occupied: [u64; WORDS],
    /// Events beyond the ring horizon.
    overflow: BinaryHeap<Reverse<Entry<T, K>>>,
    len: usize,
}

impl<T, K: Ord + Copy> Default for TimerWheel<T, K> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T, K: Ord + Copy> TimerWheel<T, K> {
    /// An empty wheel with the cursor at t = 0.
    pub fn new() -> TimerWheel<T, K> {
        TimerWheel {
            cursor: 0,
            cur: BinaryHeap::new(),
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket(at: Instant) -> u64 {
        at.nanos() >> SLOT_SHIFT
    }

    /// Schedule `item` at `(at, seq)`. `seq` must be unique across live
    /// entries at the same instant (the simulator's content-derived event
    /// keys guarantee this).
    pub fn schedule(&mut self, at: Instant, seq: K, item: T) {
        self.len += 1;
        self.route(Entry { at, seq, item });
    }

    /// Place an entry in `cur`, the ring, or overflow based on its bucket.
    #[inline]
    fn route(&mut self, e: Entry<T, K>) {
        let b = Self::bucket(e.at);
        if b <= self.cursor {
            self.cur.push(Reverse(e));
        } else if b < self.cursor + SLOTS as u64 {
            let s = (b as usize) & (SLOTS - 1);
            if self.slots[s].is_empty() {
                self.occupied[s / 64] |= 1 << (s % 64);
            }
            self.slots[s].push(e);
        } else {
            self.overflow.push(Reverse(e));
        }
    }

    /// Key of the next event to pop, without removing it.
    pub fn peek_key(&mut self) -> Option<(Instant, K)> {
        if self.len == 0 {
            return None;
        }
        self.advance();
        self.cur.peek().map(|Reverse(e)| (e.at, e.seq))
    }

    /// Remove and return the globally earliest `(at, seq, item)`.
    pub fn pop(&mut self) -> Option<(Instant, K, T)> {
        if self.len == 0 {
            return None;
        }
        self.advance();
        let Reverse(e) = self.cur.pop().expect("advance left cur empty");
        self.len -= 1;
        Some((e.at, e.seq, e.item))
    }

    /// Move the cursor forward until `cur` holds the next pending event.
    /// Requires `len > 0`.
    fn advance(&mut self) {
        while self.cur.is_empty() {
            if let Some(b) = self.next_occupied_bucket() {
                self.cursor = b;
                let s = (b as usize) & (SLOTS - 1);
                self.occupied[s / 64] &= !(1 << (s % 64));
                let mut v = std::mem::take(&mut self.slots[s]);
                for e in v.drain(..) {
                    self.cur.push(Reverse(e));
                }
                self.slots[s] = v; // keep the allocation
            } else {
                // Ring empty: jump the cursor to the earliest overflow
                // event's bucket.
                let Reverse(head) = self.overflow.peek().expect("wheel len out of sync");
                self.cursor = Self::bucket(head.at);
            }
            self.migrate_overflow();
        }
    }

    /// Pull overflow events that now fall within the ring horizon.
    fn migrate_overflow(&mut self) {
        let horizon = self.cursor + SLOTS as u64;
        while let Some(Reverse(head)) = self.overflow.peek() {
            if Self::bucket(head.at) >= horizon {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked entry vanished");
            self.route(e);
        }
    }

    /// The first occupied ring bucket strictly after the cursor, if any.
    fn next_occupied_bucket(&self) -> Option<u64> {
        let c = (self.cursor as usize) & (SLOTS - 1);
        let base = self.cursor - c as u64;
        let mut idx = (c + 1) & (SLOTS - 1);
        let mut remaining = SLOTS - 1;
        while remaining > 0 {
            let word = idx / 64;
            let bit = idx % 64;
            let span = (64 - bit).min(remaining);
            let mut bits = self.occupied[word] >> bit;
            if span < 64 {
                bits &= (1u64 << span) - 1;
            }
            if bits != 0 {
                let s = idx + bits.trailing_zeros() as usize;
                let b = if s > c {
                    base + s as u64
                } else {
                    base + (SLOTS + s) as u64
                };
                return Some(b);
            }
            idx = (idx + span) & (SLOTS - 1);
            remaining -= span;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, seq, item)) = w.pop() {
            out.push((at.nanos(), seq, item));
        }
        out
    }

    #[test]
    fn pops_in_key_order() {
        let mut w = TimerWheel::new();
        w.schedule(Instant::from_nanos(500), 0, 1);
        w.schedule(Instant::from_nanos(100), 1, 2);
        w.schedule(Instant::from_millis(5), 2, 3);
        w.schedule(Instant::from_secs(2), 3, 4); // beyond the horizon
        w.schedule(Instant::from_nanos(100), 4, 5); // tie on `at`
        assert_eq!(
            drain(&mut w),
            vec![
                (100, 1, 2),
                (100, 4, 5),
                (500, 0, 1),
                (5_000_000, 2, 3),
                (2_000_000_000, 3, 4),
            ]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn interleaved_inserts_stay_ordered() {
        let mut w = TimerWheel::new();
        w.schedule(Instant::from_millis(10), 0, 0);
        assert_eq!(w.pop().unwrap().2, 0);
        // Insert at the cursor's own instant and far beyond the horizon.
        w.schedule(Instant::from_millis(10), 1, 1);
        w.schedule(Instant::from_secs(10), 2, 2);
        w.schedule(Instant::from_millis(300), 3, 3);
        assert_eq!(w.pop().unwrap().2, 1);
        assert_eq!(w.pop().unwrap().2, 3);
        assert_eq!(w.pop().unwrap().2, 2);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn peek_matches_pop_and_is_stable() {
        let mut w = TimerWheel::new();
        w.schedule(Instant::from_micros(70), 0, 10);
        w.schedule(Instant::from_micros(70), 1, 11);
        assert_eq!(w.peek_key(), Some((Instant::from_micros(70), 0)));
        assert_eq!(w.peek_key(), Some((Instant::from_micros(70), 0)));
        assert_eq!(w.pop().unwrap().1, 0);
        assert_eq!(w.peek_key(), Some((Instant::from_micros(70), 1)));
    }

    #[test]
    fn empty_ring_jumps_to_overflow() {
        let mut w = TimerWheel::new();
        // Two events far apart, both beyond the initial horizon.
        w.schedule(Instant::from_secs(100), 0, 1);
        w.schedule(Instant::from_secs(1), 1, 2);
        assert_eq!(w.pop().unwrap().2, 2);
        assert_eq!(w.pop().unwrap().2, 1);
    }

    #[test]
    fn dense_same_slot_population() {
        let mut w = TimerWheel::new();
        for i in 0..1000u64 {
            w.schedule(Instant::from_nanos(1_000_000 + (i % 7)), i, i as u32);
        }
        let out = drain(&mut w);
        assert_eq!(out.len(), 1000);
        for pair in out.windows(2) {
            assert!((pair[0].0, pair[0].1) < (pair[1].0, pair[1].1));
        }
    }
}
