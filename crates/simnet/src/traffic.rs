//! Workload generators and sinks: CBR/Poisson sources, counting sinks and
//! an echo reflector.
//!
//! These reproduce the paper's "background traffic" (iperf UDP at a target
//! rate competing with CI traffic at a shared gateway, Figs. 3(g) and 10(b)).

use crate::packet::Packet;
use crate::sim::{Ctx, Node, PortId};
use crate::time::{Duration, Instant};
use rand::Rng;
use std::net::Ipv4Addr;

/// Shape of a traffic source's inter-packet gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceShape {
    /// Constant bit rate: packets exactly evenly spaced.
    Cbr,
    /// Poisson arrivals: exponential gaps with the same mean rate.
    Poisson,
}

/// A unidirectional UDP traffic generator.
///
/// Emits `payload_bytes`-sized datagrams toward `dst` at `rate_bps`
/// (counting IP/UDP headers in the rate, like iperf's on-the-wire
/// accounting) between `start` and `stop`.
pub struct UdpSource {
    src: (Ipv4Addr, u16),
    dst: (Ipv4Addr, u16),
    payload_bytes: u32,
    rate_bps: u64,
    shape: SourceShape,
    start: Instant,
    stop: Instant,
    tos: u8,
    /// Packets emitted so far.
    pub sent: u64,
    /// Wire bytes emitted so far.
    pub sent_bytes: u64,
}

const TOKEN_EMIT: u64 = 1;

impl UdpSource {
    /// New CBR source, running for the whole simulation by default.
    pub fn cbr(
        src: (Ipv4Addr, u16),
        dst: (Ipv4Addr, u16),
        rate_bps: u64,
        payload_bytes: u32,
    ) -> UdpSource {
        UdpSource {
            src,
            dst,
            payload_bytes,
            rate_bps,
            shape: SourceShape::Cbr,
            start: Instant::ZERO,
            stop: Instant::MAX,
            tos: 0,
            sent: 0,
            sent_bytes: 0,
        }
    }

    /// Switch to Poisson arrivals.
    pub fn poisson(mut self) -> UdpSource {
        self.shape = SourceShape::Poisson;
        self
    }

    /// Builder-style: restrict the active window.
    pub fn window(mut self, start: Instant, stop: Instant) -> UdpSource {
        self.start = start;
        self.stop = stop;
        self
    }

    /// Builder-style: set the TOS byte on emitted packets.
    pub fn with_tos(mut self, tos: u8) -> UdpSource {
        self.tos = tos;
        self
    }

    /// Mean gap between packets to achieve the configured rate.
    fn mean_gap(&self) -> Duration {
        let wire = Packet::udp(self.src, self.dst, self.payload_bytes).wire_size();
        if self.rate_bps == 0 {
            return Duration::MAX;
        }
        Duration::from_secs_f64(wire as f64 * 8.0 / self.rate_bps as f64)
    }

    /// Must be called once after adding the node to arm the first emission:
    /// `sim.schedule_timer(node, start, UdpSource::KICKOFF)`.
    pub const KICKOFF: u64 = TOKEN_EMIT;
}

impl Node for UdpSource {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {
        // Sources ignore inbound traffic.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_EMIT || self.rate_bps == 0 {
            return;
        }
        let now = ctx.now();
        if now < self.start || now >= self.stop {
            if now < self.start {
                ctx.schedule_at(self.start, TOKEN_EMIT);
            }
            return;
        }
        let id = ctx.fresh_packet_id();
        let pkt = Packet::udp(self.src, self.dst, self.payload_bytes)
            .with_tos(self.tos)
            .with_id(id)
            .with_created(now);
        self.sent += 1;
        self.sent_bytes += pkt.wire_size() as u64;
        ctx.send(0, pkt);

        let gap = match self.shape {
            SourceShape::Cbr => self.mean_gap(),
            SourceShape::Poisson => {
                let u: f64 = ctx.rng().gen_range(f64::EPSILON..1.0);
                self.mean_gap().mul_f64(-u.ln())
            }
        };
        let next = now + gap;
        if next < self.stop {
            ctx.schedule_at(next, TOKEN_EMIT);
        }
    }
}

/// A sink that counts packets/bytes and records per-packet one-way delay
/// (using [`Packet::created`] timestamps).
#[derive(Default)]
pub struct Sink {
    packets: u64,
    bytes: u64,
    delays: Vec<Duration>,
    last_arrival: Option<Instant>,
}

impl Sink {
    /// New empty sink.
    pub fn new() -> Sink {
        Sink::default()
    }

    /// Packets received.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Wire bytes received.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// One-way delays of all received packets.
    pub fn delays(&self) -> &[Duration] {
        &self.delays
    }

    /// Arrival time of the most recent packet.
    pub fn last_arrival(&self) -> Option<Instant> {
        self.last_arrival
    }

    /// Mean goodput in bits/s between the first `created` stamp and the last
    /// arrival (0 if fewer than one packet).
    pub fn mean_rate_bps(&self, duration: Duration) -> f64 {
        if duration == Duration::ZERO {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / duration.secs_f64()
    }
}

impl Node for Sink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        self.packets += 1;
        self.bytes += pkt.wire_size() as u64;
        self.delays.push(ctx.now().saturating_since(pkt.created));
        self.last_arrival = Some(ctx.now());
    }
}

/// Reflects every packet back where it came from with src/dst (and ports)
/// swapped — a stand-in for a ping responder or request/response server.
#[derive(Default)]
pub struct Reflector {
    /// Packets reflected.
    pub reflected: u64,
    /// Extra think time before the response leaves.
    pub service_time: Duration,
    /// Responses held back by the service time, due at the stored instant.
    pending: Vec<(Instant, PortId, Packet)>,
}

impl Reflector {
    /// Immediate reflector.
    pub fn new() -> Reflector {
        Reflector::default()
    }

    /// Reflector with a fixed service time per request.
    pub fn with_service_time(service_time: Duration) -> Reflector {
        Reflector {
            service_time,
            ..Reflector::default()
        }
    }
}

impl Node for Reflector {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
        self.reflected += 1;
        let mut back = pkt;
        std::mem::swap(&mut back.src, &mut back.dst);
        std::mem::swap(&mut back.src_port, &mut back.dst_port);
        if self.service_time == Duration::ZERO {
            ctx.send(port, back);
        } else {
            // Timers carry no payload, so stash the response and release it
            // when the matching timer fires.
            let due = ctx.now() + self.service_time;
            self.pending.push((due, port, back));
            ctx.schedule_at(due, 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let now = ctx.now();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                let (_, port, pkt) = self.pending.remove(i);
                ctx.send(port, pkt);
            } else {
                i += 1;
            }
        }
    }

    fn on_restart(&mut self) {
        // Configuration (the service time) survives a crash-restart; the
        // dynamic state — counters and responses in flight — does not.
        self.reflected = 0;
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::sim::Simulator;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    fn source_to_sink(
        src: UdpSource,
        horizon: Instant,
    ) -> (Simulator, crate::sim::NodeId, crate::sim::NodeId) {
        let mut sim = Simulator::new(11);
        let s = sim.add_node(Box::new(src));
        let k = sim.add_node(Box::new(Sink::new()));
        sim.connect(
            (s, 0),
            (k, 0),
            LinkConfig::delay_only(Duration::from_millis(1)),
        );
        sim.schedule_timer(s, Instant::ZERO, UdpSource::KICKOFF);
        sim.run_until(horizon);
        (sim, s, k)
    }

    #[test]
    fn cbr_source_hits_configured_rate() {
        // 10 Mbps of 1472-byte datagrams for 2 s => ~2.5 MB on the wire.
        let src = UdpSource::cbr((ip(1), 5000), (ip(2), 5001), 10_000_000, 1472)
            .window(Instant::ZERO, Instant::from_secs(2));
        let (sim, _, k) = source_to_sink(src, Instant::from_secs(3));
        let sink = sim.node_ref::<Sink>(k);
        let rate = sink.mean_rate_bps(Duration::from_secs(2));
        assert!(
            (rate - 10_000_000.0).abs() / 10_000_000.0 < 0.01,
            "rate was {rate}"
        );
    }

    #[test]
    fn poisson_source_mean_rate_close() {
        let src = UdpSource::cbr((ip(1), 5000), (ip(2), 5001), 5_000_000, 1000)
            .poisson()
            .window(Instant::ZERO, Instant::from_secs(10));
        let (sim, _, k) = source_to_sink(src, Instant::from_secs(11));
        let sink = sim.node_ref::<Sink>(k);
        let rate = sink.mean_rate_bps(Duration::from_secs(10));
        assert!(
            (rate - 5_000_000.0).abs() / 5_000_000.0 < 0.1,
            "rate was {rate}"
        );
    }

    #[test]
    fn window_bounds_emission() {
        let src = UdpSource::cbr((ip(1), 1), (ip(2), 2), 1_000_000, 1000)
            .window(Instant::from_secs(1), Instant::from_secs(2));
        let (sim, s, k) = source_to_sink(src, Instant::from_secs(5));
        let sink = sim.node_ref::<Sink>(k);
        assert!(sink.packets() > 0);
        // All arrivals must be within [1s, 2s + link delay].
        assert!(sink.last_arrival().unwrap() <= Instant::from_millis(2001));
        let src = sim.node_ref::<UdpSource>(s);
        assert_eq!(src.sent, sink.packets());
    }

    #[test]
    fn zero_rate_source_emits_nothing() {
        let src = UdpSource::cbr((ip(1), 1), (ip(2), 2), 0, 1000);
        let (sim, s, _) = source_to_sink(src, Instant::from_secs(1));
        assert_eq!(sim.node_ref::<UdpSource>(s).sent, 0);
    }

    #[test]
    fn reflector_service_time_delays_response() {
        let mut sim = Simulator::new(3);
        let sink = sim.add_node(Box::new(Sink::new()));
        let refl = sim.add_node(Box::new(Reflector::with_service_time(
            Duration::from_millis(30),
        )));
        sim.connect(
            (sink, 0),
            (refl, 0),
            LinkConfig::delay_only(Duration::from_millis(5)),
        );
        let pkt = Packet::udp((ip(1), 7), (ip(2), 8), 64).with_created(Instant::ZERO);
        // Deliver directly into the reflector's port 0 at t=5ms as if sent
        // by the sink side.
        sim.inject_packet(refl, 0, Instant::from_millis(5), pkt);
        sim.run_until_idle();
        let s = sim.node_ref::<Sink>(sink);
        assert_eq!(s.packets(), 1);
        // 5ms inbound (injected), +30ms service, +5ms back.
        assert_eq!(s.last_arrival(), Some(Instant::from_millis(40)));
        // Response has swapped endpoints.
        assert_eq!(sim.node_ref::<Reflector>(refl).reflected, 1);
    }
}
