//! Wall-clock benchmark of the four-stage matcher cascade behind
//! Fig. 3(b): real brute-force 2-NN + ratio + symmetry + RANSAC at several
//! execution caps.

use acacia_vision::feature::{object_features, render_view, Similarity, ViewParams};
use acacia_vision::matcher::{match_pair, MatcherConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_match(c: &mut Criterion) {
    let base = object_features(5, 700);
    let view = render_view(&base, Similarity::from_seed(2), ViewParams::default(), 9);
    let mut g = c.benchmark_group("bf_match");
    for cap in [32usize, 64, 128, 256] {
        let cfg = MatcherConfig {
            exec_cap: cap,
            ..MatcherConfig::default()
        };
        g.bench_with_input(BenchmarkId::new("match_pair", cap), &cfg, |b, cfg| {
            b.iter(|| match_pair(std::hint::black_box(&view), &base, cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_match);
criterion_main!(benches);
