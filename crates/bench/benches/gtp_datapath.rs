//! Wall-clock benchmark of the GTP-U data path behind Fig. 8: tunnel
//! encap/decap and flow-switch packet processing throughput.

use acacia_lte::gtpu;
use acacia_lte::ids::Teid;
use acacia_lte::switch::{FlowSwitch, SwitchCosts};
use acacia_lte::wire::{FlowActionSpec, FlowMatchSpec};
use acacia_simnet::link::LinkConfig;
use acacia_simnet::packet::Packet;
use acacia_simnet::sim::Simulator;
use acacia_simnet::time::{Duration, Instant};
use acacia_simnet::traffic::Sink;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::net::Ipv4Addr;

fn ip(a: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, a)
}

fn bench_gtp(c: &mut Criterion) {
    let inner = Packet::udp((ip(1), 40_000), (ip(2), 9_000), 1_400);
    let mut g = c.benchmark_group("gtp_datapath");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encapsulate", |b| {
        b.iter(|| gtpu::encapsulate(std::hint::black_box(&inner), Teid(7), ip(10), ip(11)))
    });
    let outer = gtpu::encapsulate(&inner, Teid(7), ip(10), ip(11));
    g.bench_function("decapsulate", |b| {
        b.iter(|| gtpu::decapsulate(std::hint::black_box(&outer)).unwrap())
    });
    g.bench_function("peek_teid", |b| {
        b.iter(|| gtpu::peek_teid(std::hint::black_box(&outer)).unwrap())
    });
    g.finish();

    // Push 1000 packets through a switch inside a simulator run.
    let mut g = c.benchmark_group("flow_switch_1000pkts");
    g.sample_size(20);
    for (name, costs) in [
        ("fast_path", SwitchCosts::acacia_ovs()),
        ("user_space", SwitchCosts::openepc_userspace()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = Simulator::new(1);
                let mut sw = FlowSwitch::new(ip(100), costs);
                sw.install(
                    1,
                    FlowMatchSpec {
                        teid: Some(Teid(7)),
                        dst: None,
                        src: None,
                    },
                    vec![FlowActionSpec::GtpDecap, FlowActionSpec::Output { port: 2 }],
                );
                let sw = sim.add_node(Box::new(sw));
                let sink = sim.add_node(Box::new(Sink::new()));
                sim.connect((sw, 2), (sink, 0), LinkConfig::delay_only(Duration::ZERO));
                for i in 0..1000u64 {
                    let pkt = gtpu::encapsulate(&inner, Teid(7), ip(10), ip(100));
                    sim.inject_packet(sw, 1, Instant::from_micros(i * 12), pkt);
                }
                sim.run_until_idle();
                sim.node_ref::<Sink>(sink).packets()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gtp);
criterion_main!(benches);
