//! Wall-clock benchmark of a complete end-to-end session (Fig. 13 path):
//! how long the *simulation* of a full ACACIA session takes on this
//! machine, per deployment.

use acacia::scenario::{Deployment, Scenario, ScenarioConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_session");
    g.sample_size(10);
    for d in Deployment::ALL {
        g.bench_with_input(BenchmarkId::new("smoke", d.name()), &d, |b, &d| {
            b.iter(|| Scenario::build(ScenarioConfig::smoke(d)).run())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
