//! Ablation benchmarks for the design choices called out in `DESIGN.md` §4.
//!
//! Each group compares the chosen design against its alternative so the
//! cost/benefit is directly measurable:
//!
//! * `pruning_granularity` — matching work under no pruning, section-level
//!   (rxPower) and subsection-level (ACACIA) pruning.
//! * `classification_point` — in-modem TFT classification vs a
//!   middlebox-style per-packet inspection of GTP traffic.
//! * `bearer_policy` — control-plane cost of an on-demand
//!   release/re-establish cycle (what always-on bearers would pay per idle
//!   event).

use acacia::locmgr::{LocalizationManager, LocalizationMetadata};
use acacia::search::{candidates, SearchContext, SearchStrategy};
use acacia_d2d::channel::RadioChannel;
use acacia_d2d::discovery::ProximityWorld;
use acacia_d2d::modem::Modem;
use acacia_d2d::service::{Announcement, SubscriptionFilter};
use acacia_geo::floor::FloorPlan;
use acacia_geo::pathloss::PathLossModel;
use acacia_lte::gtpu;
use acacia_lte::ids::Teid;
use acacia_lte::network::{LteConfig, LteNetwork};
use acacia_lte::tft::{Direction, PacketFilter, Tft};
use acacia_simnet::packet::Packet;
use acacia_vision::db::ObjectDb;
use acacia_vision::feature::{object_features, render_view, Similarity, ViewParams};
use acacia_vision::image::{ImageSpec, Resolution};
use acacia_vision::matcher::MatcherConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::Ipv4Addr;

fn pruning_granularity(c: &mut Criterion) {
    let floor = FloorPlan::retail_store();
    let db = ObjectDb::generate_retail(&floor, 5, 3);
    let model = PathLossModel::indoor_default();
    let world = ProximityWorld::from_floor(&floor, "acme", RadioChannel::new(model, 3));
    let cp = &floor.checkpoints[10];
    let mut modem = Modem::new();
    modem.subscribe(SubscriptionFilter::service_wide("acme"));
    let mut locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(&floor, &model));
    for ev in world.scan_dwell(&mut modem, cp.pos, 0, 4) {
        locmgr.report(&ev.publisher, ev.rx_power_dbm);
    }
    let ctx = SearchContext {
        rx_readings: locmgr.rx_view(),
        location: locmgr.estimate(),
    };
    let target = &db.objects()[0];
    let spec = ImageSpec::new(target.id, Resolution::new(960, 720));
    let base = object_features(target.id, spec.feature_count());
    let view = render_view(&base, Similarity::from_seed(5), ViewParams::default(), 5);
    let cfg = MatcherConfig {
        exec_cap: 24,
        ..MatcherConfig::default()
    };

    let mut g = c.benchmark_group("ablation_pruning_granularity");
    g.sample_size(20);
    for strategy in [
        SearchStrategy::Naive,
        SearchStrategy::RxPower,
        SearchStrategy::ACACIA_DEFAULT,
    ] {
        g.bench_with_input(
            BenchmarkId::new("query", strategy.name()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let cands = candidates(strategy, &db, &floor, &ctx);
                    db.match_against(std::hint::black_box(&view), cands, &cfg)
                })
            },
        );
    }
    g.finish();
}

fn classification_point(c: &mut Criterion) {
    // ACACIA: the modem's UL TFT decides the bearer with a couple of
    // comparisons. Middlebox alternative: decapsulate every GTP packet and
    // inspect the inner five-tuple.
    let server = Ipv4Addr::new(10, 4, 0, 1);
    let tft = Tft::single(PacketFilter::to_host(server));
    let pkt = Packet::udp((Ipv4Addr::new(10, 10, 0, 1), 9000), (server, 9000), 1_400);
    let tunneled = gtpu::encapsulate(
        &pkt,
        Teid(9),
        Ipv4Addr::new(10, 1, 0, 1),
        Ipv4Addr::new(10, 2, 0, 1),
    );

    let mut g = c.benchmark_group("ablation_classification_point");
    g.bench_function("in_modem_tft", |b| {
        b.iter(|| tft.matches(std::hint::black_box(&pkt), Direction::Uplink))
    });
    g.bench_function("middlebox_inspection", |b| {
        b.iter(|| {
            let (_, inner) = gtpu::decapsulate(std::hint::black_box(&tunneled)).unwrap();
            inner.dst == server
        })
    });
    g.finish();

    // In-modem filtering also applies to discovery: code/mask match vs
    // waking the application for every broadcast.
    let filter = SubscriptionFilter::exact("acme", "laptops");
    let ann = Announcement::new("acme", "laptops");
    let mut g = c.benchmark_group("ablation_discovery_filtering");
    g.bench_function("modem_code_mask", |b| {
        b.iter(|| filter.matches(std::hint::black_box(ann.code)))
    });
    g.bench_function("app_string_compare", |b| {
        b.iter(|| {
            std::hint::black_box(&ann).service == "acme"
                && std::hint::black_box(&ann).expression == "laptops"
        })
    });
    g.finish();
}

fn bearer_policy(c: &mut Criterion) {
    // Simulation cost of one on-demand release + re-establish cycle — the
    // §4 control-overhead event. (Always-on dedicated bearers pay this for
    // both bearers at every idle event; ACACIA pays it once and creates
    // the second bearer only on a service match.)
    let mut g = c.benchmark_group("ablation_bearer_policy");
    g.sample_size(10);
    g.bench_function("release_reestablish_cycle", |b| {
        b.iter(|| {
            let mut net = LteNetwork::new(LteConfig::default());
            net.attach(0);
            net.log.clear();
            net.trigger_idle_release(0);
            net.service_request(0);
            net.log.core_bytes()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    pruning_granularity,
    classification_point,
    bearer_policy
);
criterion_main!(benches);
