//! Wall-clock benchmark of the synthetic SURF pipeline behind Fig. 3(a):
//! base-feature generation and view rendering at each sweep resolution.

use acacia_vision::feature::{object_features, render_view, Similarity, ViewParams};
use acacia_vision::image::{ImageSpec, Resolution};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_extract(c: &mut Criterion) {
    let mut g = c.benchmark_group("surf_extract");
    for res in Resolution::SWEEP {
        let spec = ImageSpec::new(1, res);
        let n = spec.feature_count();
        g.bench_with_input(BenchmarkId::new("object_features", res), &n, |b, &n| {
            b.iter(|| object_features(std::hint::black_box(1), n))
        });
        let base = object_features(1, n);
        g.bench_with_input(BenchmarkId::new("render_view", res), &base, |b, base| {
            b.iter(|| {
                render_view(
                    std::hint::black_box(base),
                    Similarity::from_seed(3),
                    ViewParams::default(),
                    7,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_extract);
criterion_main!(benches);
