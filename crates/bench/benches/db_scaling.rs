//! Wall-clock benchmark behind Fig. 3(h): database-size scaling of a real
//! pruned-database query.

use acacia_geo::floor::FloorPlan;
use acacia_vision::db::ObjectDb;
use acacia_vision::feature::{object_features, render_view, Similarity, ViewParams};
use acacia_vision::image::{ImageSpec, Resolution};
use acacia_vision::matcher::MatcherConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_db(c: &mut Criterion) {
    let floor = FloorPlan::retail_store();
    let db = ObjectDb::generate_retail(&floor, 5, 3);
    let target = &db.objects()[0];
    let spec = ImageSpec::new(target.id, Resolution::new(960, 720));
    let base = object_features(target.id, spec.feature_count());
    let view = render_view(&base, Similarity::from_seed(4), ViewParams::default(), 4);
    let cfg = MatcherConfig {
        exec_cap: 24,
        ..MatcherConfig::default()
    };
    let mut g = c.benchmark_group("db_scaling");
    g.sample_size(20);
    for n in [1usize, 5, 10, 25, 50] {
        g.bench_with_input(BenchmarkId::new("match_against", n), &n, |b, &n| {
            b.iter(|| {
                db.match_against(
                    std::hint::black_box(&view),
                    db.objects().iter().take(n),
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_db);
criterion_main!(benches);
