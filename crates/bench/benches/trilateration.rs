//! Wall-clock benchmark of the localization path behind Fig. 9(b):
//! path-loss inversion + Gauss-Newton tri-lateration.

use acacia_geo::floor::FloorPlan;
use acacia_geo::pathloss::{FittedPathLoss, PathLossModel};
use acacia_geo::point::Point;
use acacia_geo::trilateration::{trilaterate, RangeMeasurement};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_trilateration(c: &mut Criterion) {
    let floor = FloorPlan::retail_store();
    let model = PathLossModel::indoor_default();
    let fit = FittedPathLoss::fit(
        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&d| (d, model.rx_power_dbm(d)))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let truth = Point::new(13.0, 8.0);

    let mut g = c.benchmark_group("trilateration");
    for k in [3usize, 5, 7] {
        let ms: Vec<RangeMeasurement> = floor.landmarks[..k]
            .iter()
            .map(|lm| {
                let rx = model.rx_power_dbm(truth.distance(lm.pos));
                RangeMeasurement::new(lm.pos, fit.predict_distance(rx))
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("solve", k), &ms, |b, ms| {
            b.iter(|| trilaterate(std::hint::black_box(ms)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trilateration);
criterion_main!(benches);
