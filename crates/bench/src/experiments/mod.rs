//! One module per group of paper artifacts. Every public `figXX()`
//! function regenerates the corresponding table/figure as a printable
//! [`Table`](crate::table::Table); `*_data` variants expose the raw series
//! for tests and the Criterion benches.

pub mod application;
pub mod chaos;
pub mod city;
pub mod failover;
pub mod compute;
pub mod loaded;
pub mod localization;
pub mod mobility;
pub mod network;
pub mod scale;
