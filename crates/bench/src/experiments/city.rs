//! The city-scale sharding benchmark: one 16-cell / 2048-UE scenario
//! run at every shard count, proving parity and measuring scaling.
//!
//! Not a figure of the original paper — it measures the harness. The
//! `city` scenario (8 MEC regions × 2 cells × 256 walking UEs sharing
//! one LTE core) is the workload the sharded event engine exists for;
//! this experiment runs the *same* configuration at `--shards`
//! {1, 2, 4, 8} and prints one table row per shard count. Every
//! deterministic column must be identical across the rows — the table
//! itself is a parity check: a sharded run that diverged from the
//! single-threaded engine shows up as a row that doesn't match.
//!
//! Stdout carries only deterministic columns (byte-identical across
//! `--jobs` and `--shards` values, like every other experiment).
//! Wall-clock throughput and per-shard speedup go to stderr and to
//! `BENCH_city.json` in the current directory, which CI parses for the
//! events/s floor.

use crate::runner;
use crate::table::{fmt_secs, Table};
use acacia::city::{CityConfig, CityReport, CityScenario};

/// Shard counts swept by the benchmark.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One executed cell: the deterministic report plus its wall-clock.
pub struct CityCell {
    /// Shard count the engine ran with.
    pub shards: usize,
    /// The scenario's deterministic outcome.
    pub report: CityReport,
    /// Wall-clock seconds the cell took (non-deterministic; kept off
    /// stdout).
    pub wall_s: f64,
}

impl CityCell {
    /// Engine throughput: events dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.report.events_processed as f64 / self.wall_s.max(1e-9)
    }
}

/// Run one city configuration at every shard count, serially (the shard
/// count is a process-wide engine knob, so cells must not overlap). The
/// knob in effect before the sweep — the `--shards` flag — is restored
/// afterwards so later experiments honour it.
fn sweep(cfg: &CityConfig) -> Vec<CityCell> {
    let prev = acacia_simnet::default_shards();
    let mut cells = Vec::with_capacity(SHARD_COUNTS.len());
    for &shards in &SHARD_COUNTS {
        acacia_simnet::set_default_shards(Some(shards));
        let cfg = cfg.clone();
        let mut ran = runner::pmap("city", vec![(format!("shards={shards}"), cfg)], |cfg| {
            let t0 = std::time::Instant::now();
            let report = CityScenario::build(cfg).run();
            runner::report_events(report.events_processed);
            runner::report_shard_events(&report.events_by_shard);
            CityCell {
                shards,
                report,
                wall_s: t0.elapsed().as_secs_f64(),
            }
        });
        cells.push(ran.remove(0));
    }
    acacia_simnet::set_default_shards(Some(prev));
    cells
}

/// City sweep data at the benchmark configuration.
pub fn city_reports() -> Vec<CityCell> {
    sweep(&CityConfig::figure())
}

/// City: shard-parity table and events/s scaling for the 2048-UE city.
pub fn city() -> Table {
    let cells = city_reports();
    let mut t = Table::new(
        "City — sharded engine parity and scaling (8 regions, 16 cells, 2048 UEs)",
        &[
            "shards",
            "frames",
            "handovers",
            "x2 msgs",
            "s1ap msgs",
            "gtp-c msgs",
            "reanchors",
            "wedged",
            "events",
            "xshard",
            "sim time",
        ],
    );
    for c in &cells {
        let r = &c.report;
        let frames_done: u64 = r.ues.iter().map(|u| u.frames_done).sum();
        assert!(
            r.cross_shard_conserved(),
            "shards={}: cross-shard exchange lost events ({} sent, {} received)",
            c.shards,
            r.cross_shard_sent,
            r.cross_shard_received
        );
        t.row(vec![
            c.shards.to_string(),
            format!("{}/{}", frames_done, r.frames_requested * r.ue_count as u64),
            r.total_handovers().to_string(),
            r.x2_msgs.to_string(),
            r.s1ap_msgs.to_string(),
            r.gtpc_msgs.to_string(),
            r.dedicated_reanchored.to_string(),
            r.wedged().to_string(),
            r.events_processed.to_string(),
            r.cross_shard_received.to_string(),
            fmt_secs(r.sim_elapsed.secs_f64()),
        ]);
    }
    t.note("the same 2048-UE city runs once per shard count; every column except 'shards'");
    t.note("and 'xshard' must be identical across rows (the table is a live parity check)");
    t.note("and 'wedged' must be 0; throughput and speedup go to stderr + BENCH_city.json");

    // Wall-clock scaling is machine-dependent: stderr + JSON only, so
    // stdout stays byte-identical across runs, --jobs, and --shards.
    let base = cells
        .iter()
        .find(|c| c.shards == 1)
        .map(|c| c.events_per_sec())
        .unwrap_or(0.0);
    for c in &cells {
        eprintln!(
            "city shards={}: {} events in {:.2}s wall ({:.0} events/s, {:.2}x single-thread)",
            c.shards,
            c.report.events_processed,
            c.wall_s,
            c.events_per_sec(),
            c.events_per_sec() / base.max(1e-9)
        );
    }
    let json = render_json(&cells);
    match std::fs::write("BENCH_city.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_city.json"),
        Err(e) => eprintln!("could not write BENCH_city.json: {e}"),
    }
    t
}

/// Hand-rolled JSON (the bench crate deliberately has no serde): every
/// value is an integer, a float formatted with `{:.N}`, or an integer
/// array, so no string escaping is needed.
fn render_json(cells: &[CityCell]) -> String {
    let base = cells
        .iter()
        .find(|c| c.shards == 1)
        .map(|c| c.events_per_sec())
        .unwrap_or(0.0);
    let mut out = String::from("{\n  \"experiment\": \"city\",\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        let frames_done: u64 = r.ues.iter().map(|u| u.frames_done).sum();
        let by_shard: Vec<String> = r.events_by_shard.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!(
            concat!(
                "    {{\"shards\": {}, \"ue_count\": {}, \"frames_done\": {}, ",
                "\"frames_requested\": {}, \"handovers\": {}, \"x2_msgs\": {}, ",
                "\"s1ap_msgs\": {}, \"gtpc_msgs\": {}, \"dedicated_reanchored\": {}, ",
                "\"wedged\": {}, \"events_processed\": {}, \"events_by_shard\": [{}], ",
                "\"cross_shard_sent\": {}, \"cross_shard_received\": {}, ",
                "\"sim_elapsed_s\": {:.3}, \"wall_s\": {:.3}, \"events_per_sec\": {:.0}, ",
                "\"speedup\": {:.3}}}{}\n"
            ),
            c.shards,
            r.ue_count,
            frames_done,
            r.frames_requested * r.ue_count as u64,
            r.total_handovers(),
            r.x2_msgs,
            r.s1ap_msgs,
            r.gtpc_msgs,
            r.dedicated_reanchored,
            r.wedged(),
            r.events_processed,
            by_shard.join(", "),
            r.cross_shard_sent,
            r.cross_shard_received,
            r.sim_elapsed.secs_f64(),
            c.wall_s,
            c.events_per_sec(),
            c.events_per_sec() / base.max(1e-9),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke-size sweep: the deterministic report must be identical
    /// at every shard count, and the JSON must be structurally sound.
    #[test]
    fn smoke_sweep_is_shard_invariant_and_json_is_well_formed() {
        let mut cfg = CityConfig::smoke();
        cfg.ues_per_region = 2;
        cfg.frame_count = 2;
        let cells = sweep(&cfg);
        assert_eq!(cells.len(), SHARD_COUNTS.len());
        let fingerprint = |c: &CityCell| {
            let r = &c.report;
            (
                r.ues
                    .iter()
                    .map(|u| (u.frames_done, u.handovers, u.retransmissions))
                    .collect::<Vec<_>>(),
                r.x2_msgs,
                r.s1ap_msgs,
                r.gtpc_msgs,
                r.dedicated_reanchored,
                r.events_processed,
                r.sim_elapsed,
            )
        };
        let base = fingerprint(&cells[0]);
        for c in &cells[1..] {
            assert_eq!(
                fingerprint(c),
                base,
                "shards={} diverged from shards=1",
                c.shards
            );
            assert!(c.report.cross_shard_conserved());
        }
        assert_eq!(
            cells[0].report.cross_shard_sent, 0,
            "one shard, no exchange"
        );
        assert!(cells.last().unwrap().report.cross_shard_sent > 0);

        let json = render_json(&cells);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"shards\"").count(), SHARD_COUNTS.len());
        assert!(json.contains("\"wedged\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
