//! The scale-out benchmark: handover signalling load and engine
//! throughput as the UE population grows.
//!
//! Not a figure of the original paper — its evaluation runs one UE at a
//! time. This experiment answers the operational question the paper's §8
//! architecture raises but never measures: what does ACACIA's per-UE
//! bearer management *cost the control plane* as concurrent sessions
//! scale? Each cell runs N independent UEs (N ∈ {1, 8, 32, 128}) walking
//! the two-cell corridor with live AR sessions, and reports the X2 /
//! S1AP / GTP-C message volume, core signalling bytes, and bearer
//! re-anchors those walks generate. Every session must complete — a
//! wedged count above zero fails the run's claim.
//!
//! Stdout carries only deterministic columns (byte-identical across
//! `--jobs` worker counts, like every other experiment). Wall-clock
//! throughput — the engine-overhaul headline number — goes to stderr and
//! to `BENCH_scale.json` in the current directory, which CI parses.

use crate::runner;
use crate::table::{fmt_secs, Table};
use acacia::scale::{ScaleConfig, ScaleReport, ScaleScenario};

/// UE populations swept by the benchmark.
pub const UE_COUNTS: [usize; 4] = [1, 8, 32, 128];

/// One executed cell: the deterministic report plus its wall-clock.
pub struct ScaleCell {
    /// The scenario's deterministic outcome.
    pub report: ScaleReport,
    /// Wall-clock seconds the cell took (non-deterministic; kept off
    /// stdout).
    pub wall_s: f64,
}

impl ScaleCell {
    /// Engine throughput: events dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.report.events_processed as f64 / self.wall_s.max(1e-9)
    }
}

/// Scale sweep data: one cell per UE population.
pub fn scale_reports() -> Vec<ScaleCell> {
    let cells = UE_COUNTS.iter().map(|&n| (format!("N={n}"), n)).collect();
    runner::pmap("scale", cells, |n| {
        let t0 = std::time::Instant::now();
        let report = ScaleScenario::build(ScaleConfig::figure(n)).run();
        runner::report_events(report.events_processed);
        ScaleCell {
            report,
            wall_s: t0.elapsed().as_secs_f64(),
        }
    })
}

/// Scale: signalling load and throughput vs concurrent UE count.
pub fn scale() -> Table {
    let cells = scale_reports();
    let mut t = Table::new(
        "Scale — handover signalling load vs concurrent UEs (two MEC cells)",
        &[
            "UEs",
            "frames",
            "handovers",
            "x2 msgs",
            "s1ap msgs",
            "gtp-c msgs",
            "core sig",
            "reanchors",
            "x2 fwd",
            "wedged",
            "events",
            "sim time",
        ],
    );
    for c in &cells {
        let r = &c.report;
        let frames_done: u64 = r.ues.iter().map(|u| u.frames_done).sum();
        t.row(vec![
            r.ue_count.to_string(),
            format!("{}/{}", frames_done, r.frames_requested * r.ue_count as u64),
            r.total_handovers().to_string(),
            r.x2_msgs.to_string(),
            r.s1ap_msgs.to_string(),
            r.gtpc_msgs.to_string(),
            format!("{:.1} kB", r.core_signalling_bytes as f64 / 1e3),
            r.dedicated_reanchored.to_string(),
            r.x2_forwarded.to_string(),
            r.wedged().to_string(),
            r.events_processed.to_string(),
            fmt_secs(r.sim_elapsed.secs_f64()),
        ]);
    }
    t.note("every UE walks MEC cell -> far cell -> back with a live AR session; signalling");
    t.note("(X2 handover, S1AP path switch, GTP-C bearer management) scales with the walks,");
    t.note("not the frames; 'wedged' (sessions that lost frames) must be 0 at every N");

    // Wall-clock throughput is machine-dependent: stderr + JSON only, so
    // stdout stays byte-identical across runs and --jobs values.
    for c in &cells {
        eprintln!(
            "scale N={}: {} events in {:.2}s wall ({:.0} events/s)",
            c.report.ue_count,
            c.report.events_processed,
            c.wall_s,
            c.events_per_sec()
        );
    }
    let json = render_json(&cells);
    match std::fs::write("BENCH_scale.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_scale.json"),
        Err(e) => eprintln!("could not write BENCH_scale.json: {e}"),
    }
    t
}

/// Hand-rolled JSON (the bench crate deliberately has no serde): every
/// value is an integer, a float formatted with `{:.N}`, or a count, so
/// no string escaping is needed.
fn render_json(cells: &[ScaleCell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"scale\",\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        let frames_done: u64 = r.ues.iter().map(|u| u.frames_done).sum();
        out.push_str(&format!(
            concat!(
                "    {{\"ue_count\": {}, \"frames_done\": {}, \"frames_requested\": {}, ",
                "\"handovers\": {}, \"x2_msgs\": {}, \"s1ap_msgs\": {}, \"gtpc_msgs\": {}, ",
                "\"core_signalling_bytes\": {}, \"dedicated_reanchored\": {}, ",
                "\"x2_forwarded\": {}, \"wedged\": {}, \"events_processed\": {}, ",
                "\"sim_elapsed_s\": {:.3}, \"wall_s\": {:.3}, \"events_per_sec\": {:.0}}}{}\n"
            ),
            r.ue_count,
            frames_done,
            r.frames_requested * r.ue_count as u64,
            r.total_handovers(),
            r.x2_msgs,
            r.s1ap_msgs,
            r.gtpc_msgs,
            r.core_signalling_bytes,
            r.dedicated_reanchored,
            r.x2_forwarded,
            r.wedged(),
            r.events_processed,
            r.sim_elapsed.secs_f64(),
            c.wall_s,
            c.events_per_sec(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough_to_eyeball() {
        let cells = vec![ScaleCell {
            report: ScaleScenario::build(ScaleConfig::smoke(2)).run(),
            wall_s: 1.5,
        }];
        let json = render_json(&cells);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"ue_count\"").count(), 1);
        assert!(json.contains("\"wedged\": 0"));
        // Balanced braces/brackets — the cheap structural check a
        // serde-less crate can afford.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
