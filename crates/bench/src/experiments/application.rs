//! Application-level experiments: search-space optimization (Fig. 11),
//! multi-client contention (Fig. 12) and the end-to-end comparison
//! (Fig. 13).

use crate::runner;
use crate::table::{fmt_secs, Table};
use acacia::locmgr::{LocalizationManager, LocalizationMetadata};
use acacia::scenario::{Deployment, Scenario, ScenarioConfig};
use acacia::search::{candidates, SearchContext, SearchStrategy};
use acacia_d2d::channel::RadioChannel;
use acacia_d2d::discovery::ProximityWorld;
use acacia_d2d::modem::Modem;
use acacia_d2d::service::SubscriptionFilter;
use acacia_geo::floor::FloorPlan;
use acacia_geo::pathloss::PathLossModel;
use acacia_simnet::stats::Series;
use acacia_vision::compute::{contended_time_s, Device};
use acacia_vision::db::ObjectDb;
use acacia_vision::feature::{object_features, render_view, Similarity, ViewParams};
use acacia_vision::image::{ImageSpec, Resolution};
use acacia_vision::matcher::{MatchOps, MatcherConfig};

/// The three strategies compared in Fig. 11/12, paper order.
pub const STRATEGIES: [SearchStrategy; 3] = [
    SearchStrategy::ACACIA_DEFAULT,
    SearchStrategy::RxPower,
    SearchStrategy::Naive,
];

/// Per-frame result of the Fig. 11 workload.
#[derive(Debug, Clone)]
pub struct Fig11Frame {
    /// Metered matching operations.
    pub ops: MatchOps,
    /// Candidates examined.
    pub candidates: usize,
    /// Whether the true object was found.
    pub correct: bool,
}

/// Run the Fig. 11 workload for one (strategy, resolution): photograph the
/// object at each of `checkpoints` checkpoints, `frames_per_object` views
/// each, matching against the pruned database.
pub fn fig11_frames(
    strategy: SearchStrategy,
    resolution: Resolution,
    checkpoints: usize,
    frames_per_object: usize,
    seed: u64,
) -> Vec<Fig11Frame> {
    let floor = FloorPlan::retail_store();
    let db = ObjectDb::retail_cached(5, seed);
    let model = PathLossModel::indoor_default();
    let channel = RadioChannel::new(model, seed);
    let world = ProximityWorld::from_floor(&floor, "acme", channel);
    let matcher = MatcherConfig {
        exec_cap: 32,
        ..MatcherConfig::default()
    };

    let mut out = Vec::new();
    for (ci, cp) in floor.checkpoints.iter().take(checkpoints).enumerate() {
        // Context from LTE-direct at this checkpoint.
        let mut modem = Modem::new();
        modem.subscribe(SubscriptionFilter::service_wide("acme"));
        let mut locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(&floor, &model));
        for tick in 0..4 {
            for ev in world.scan(&mut modem, cp.pos, tick) {
                locmgr.report(&ev.publisher, ev.rx_power_dbm);
            }
        }
        let ctx = SearchContext {
            rx_readings: locmgr.rx_view(),
            location: locmgr.estimate(),
        };

        // The object photographed at this checkpoint: the DB object
        // anchored there (generate_retail puts one at each checkpoint).
        let target = db
            .objects()
            .iter()
            .filter(|o| o.pos.distance(cp.pos) < 1e-6)
            .min_by_key(|o| o.id)
            .unwrap_or(&db.objects()[ci % db.len()])
            .clone();

        for f in 0..frames_per_object {
            let view_seed = (ci * 97 + f) as u64 ^ seed;
            let spec = ImageSpec::new(target.id, resolution);
            let base = object_features(target.id, spec.feature_count());
            let view = render_view(
                &base,
                Similarity::from_seed(view_seed),
                ViewParams::default(),
                view_seed,
            );
            let cands = candidates(strategy, &db, &floor, &ctx);
            let n = cands.len();
            let outcome = db.match_against(&view, cands, &matcher);
            let correct = outcome
                .best
                .as_ref()
                .map(|(id, _)| *id == target.id)
                .unwrap_or(false);
            out.push(Fig11Frame {
                ops: outcome.ops,
                candidates: n,
                correct,
            });
        }
    }
    out
}

/// Mean match time (s) for a device over a set of frames.
pub fn mean_match_s(frames: &[Fig11Frame], device: Device) -> f64 {
    let p = device.profile();
    frames.iter().map(|f| p.match_time_s(&f.ops)).sum::<f64>() / frames.len() as f64
}

/// The Fig. 11(a)/(b) resolutions, paper order.
pub const FIG11_RESOLUTIONS: [Resolution; 3] = [
    Resolution::new(720, 480),
    Resolution::new(960, 720),
    Resolution::new(1280, 720),
];

/// Fig. 11(a): mean matching time by scheme × machine × resolution.
pub fn fig11a() -> Table {
    let mut t = Table::new(
        "Fig 11(a) — matching time by search-space scheme (ms)",
        &[
            "machine (res)",
            "ACACIA",
            "rxPower",
            "Naive",
            "naive/acacia",
        ],
    );
    let cells = FIG11_RESOLUTIONS
        .iter()
        .flat_map(|&res| {
            STRATEGIES
                .iter()
                .map(move |&s| (format!("{} {res}", s.name()), (s, res)))
        })
        .collect();
    let all_frames = runner::pmap("fig11a", cells, |(strategy, res)| {
        fig11_frames(strategy, res, 24, 5, 42)
    });
    for (res, frames) in FIG11_RESOLUTIONS
        .iter()
        .zip(all_frames.chunks(STRATEGIES.len()))
    {
        for dev in [Device::I7Octa, Device::Xeon32] {
            let times: Vec<f64> = frames.iter().map(|f| mean_match_s(f, dev)).collect();
            t.row(vec![
                format!("{} ({res})", dev.name()),
                fmt_secs(times[0]),
                fmt_secs(times[1]),
                fmt_secs(times[2]),
                format!("{:.2}x", times[2] / times[0]),
            ]);
        }
    }
    t.note("paper: up to 5.02x vs Naive and 1.93x vs rxPower; Xeon much faster than i7");
    t
}

/// Fig. 11(b): distribution of per-frame match runtimes at 960×720.
pub fn fig11b() -> Table {
    let res = Resolution::new(960, 720);
    let mut t = Table::new(
        "Fig 11(b) — distribution of match runtime at 960x720 (ms)",
        &["scheme (machine)", "p10", "median", "p90", "max"],
    );
    let cells = STRATEGIES
        .iter()
        .map(|&s| (s.name().to_string(), s))
        .collect();
    let all_frames = runner::pmap("fig11b", cells, |strategy| {
        fig11_frames(strategy, res, 24, 5, 42)
    });
    for (strategy, frames) in STRATEGIES.into_iter().zip(all_frames) {
        for dev in [Device::Xeon32, Device::I7Octa] {
            let p = dev.profile();
            let series = Series::from_iter(frames.iter().map(|f| p.match_time_s(&f.ops) * 1e3));
            t.row(vec![
                format!("{} ({})", strategy.name(), dev.name()),
                format!("{:.0}", series.percentile(10.0)),
                format!("{:.0}", series.median()),
                format!("{:.0}", series.percentile(90.0)),
                format!("{:.0}", series.max()),
            ]);
        }
    }
    t.note("paper: without location pruning some frames exceed 1 s on the i7");
    t
}

/// Fig. 12: matching time vs number of concurrent clients.
pub fn fig12() -> Table {
    let res = Resolution::new(960, 720);
    let mut t = Table::new(
        "Fig 12 — matching time vs concurrent clients at 960x720 (s)",
        &["machine", "clients", "ACACIA", "rxPower", "Naive"],
    );
    let cells = STRATEGIES
        .iter()
        .map(|&s| (s.name().to_string(), s))
        .collect();
    let base = runner::pmap("fig12", cells, |strategy| {
        fig11_frames(strategy, res, 24, 5, 42)
    });
    for dev in [Device::Xeon32, Device::I7Octa] {
        for clients in [1usize, 2, 4, 8] {
            let mut cells = vec![dev.name().to_string(), clients.to_string()];
            for frames in &base {
                let t0 = mean_match_s(frames, dev);
                cells.push(fmt_secs(contended_time_s(t0, clients)));
            }
            t.row(cells);
        }
    }
    t.note("paper: runtime roughly doubles per doubling of clients (server time-sharing)");
    t
}

/// Fig. 13 data: one end-to-end session report per deployment.
pub fn fig13_reports(frame_count: u64, exec_cap: usize) -> Vec<acacia::scenario::SessionReport> {
    let cells = Deployment::ALL
        .iter()
        .map(|&d| (d.name().to_string(), d))
        .collect();
    // Each worker builds and runs its own full simulation stack; only the
    // (Send) config crosses the thread boundary.
    runner::pmap("fig13", cells, |deployment| {
        let r = Scenario::build(ScenarioConfig {
            frame_count,
            exec_cap,
            ..ScenarioConfig::e2e(deployment)
        })
        .run();
        runner::report_events(r.events_processed);
        r
    })
}

/// Fig. 13: end-to-end latency breakdown, ACACIA vs MEC vs CLOUD.
pub fn fig13() -> Table {
    let reports = fig13_reports(10, 48);
    let mut t = Table::new(
        "Fig 13 — end-to-end comparison at 720x480 (s)",
        &[
            "deployment",
            "match",
            "compute",
            "network",
            "total",
            "accuracy",
        ],
    );
    for r in &reports {
        t.row(vec![
            r.deployment.name().to_string(),
            fmt_secs(r.mean_match_s()),
            fmt_secs(r.mean_compute_s()),
            fmt_secs(r.mean_network_s()),
            fmt_secs(r.mean_total_s()),
            format!("{:.0}%", r.accuracy * 100.0),
        ]);
    }
    let total = |d: Deployment| {
        reports
            .iter()
            .find(|r| r.deployment == d)
            .expect("deployment present")
            .mean_total_s()
    };
    let (a, m, c) = (
        total(Deployment::Acacia),
        total(Deployment::Mec),
        total(Deployment::Cloud),
    );
    let net = |d: Deployment| {
        reports
            .iter()
            .find(|r| r.deployment == d)
            .expect("deployment present")
            .mean_network_s()
    };
    let mtch = |d: Deployment| {
        reports
            .iter()
            .find(|r| r.deployment == d)
            .expect("deployment present")
            .mean_match_s()
    };
    t.note(&format!(
        "end-to-end reduction: ACACIA vs CLOUD {:.0}% (paper 70%), ACACIA vs MEC {:.0}% (paper 60%), MEC vs CLOUD {:.0}% (paper 25%)",
        (1.0 - a / c) * 100.0,
        (1.0 - a / m) * 100.0,
        (1.0 - m / c) * 100.0
    ));
    t.note(&format!(
        "match reduction {:.1}x (paper 7.7x); network reduction vs CLOUD {:.2}x (paper 3.15x)",
        mtch(Deployment::Cloud) / mtch(Deployment::Acacia),
        net(Deployment::Cloud) / net(Deployment::Acacia)
    ));
    t
}

/// Ablation: sweep the ACACIA pruning radius and report the
/// accuracy / candidate-count / match-time trade-off (the design choice
/// behind `SearchStrategy::ACACIA_DEFAULT`).
pub fn ablation_radius() -> Table {
    let res = Resolution::new(960, 720);
    let mut t = Table::new(
        "Ablation — ACACIA pruning radius vs accuracy and match time (960x720, i7 8-core)",
        &["radius (m)", "mean candidates", "match time", "accuracy"],
    );
    let radii = [10u32, 15, 20, 25, 30, 40, 60, 100];
    let cells = radii
        .iter()
        .map(|&r| (format!("radius={:.1}m", r as f64 / 10.0), r))
        .collect();
    let all_frames = runner::pmap("ablation-radius", cells, |radius_x10| {
        let strategy = SearchStrategy::Acacia {
            radius_m_x10: radius_x10,
        };
        fig11_frames(strategy, res, 24, 3, 42)
    });
    for (radius_x10, frames) in radii.into_iter().zip(all_frames) {
        let cands = frames.iter().map(|f| f.candidates).sum::<usize>() as f64 / frames.len() as f64;
        let correct = frames.iter().filter(|f| f.correct).count();
        t.row(vec![
            format!("{:.1}", radius_x10 as f64 / 10.0),
            format!("{cands:.1}"),
            fmt_secs(mean_match_s(&frames, Device::I7Octa)),
            format!("{:.0}%", 100.0 * correct as f64 / frames.len() as f64),
        ]);
    }
    t.note("too small: localization error evicts the true object (accuracy drops);");
    t.note("too large: candidates (and time) grow back toward Naive. 2.5 m ≈ the mean error.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_pruning_ratios_in_paper_band() {
        let res = Resolution::new(960, 720);
        // Fewer checkpoints/frames to keep the test quick.
        let acacia = fig11_frames(SearchStrategy::ACACIA_DEFAULT, res, 8, 2, 1);
        let rx = fig11_frames(SearchStrategy::RxPower, res, 8, 2, 1);
        let naive = fig11_frames(SearchStrategy::Naive, res, 8, 2, 1);
        let (ta, tr, tn) = (
            mean_match_s(&acacia, Device::I7Octa),
            mean_match_s(&rx, Device::I7Octa),
            mean_match_s(&naive, Device::I7Octa),
        );
        assert!(ta < tr && tr < tn, "{ta} {tr} {tn}");
        // Wider bands than the full-scale run (8 checkpoints instead of
        // 24 makes the per-checkpoint pruning variance visible).
        let vs_naive = tn / ta;
        let vs_rx = tr / ta;
        assert!((2.5..12.0).contains(&vs_naive), "naive/acacia {vs_naive}");
        assert!((1.2..5.0).contains(&vs_rx), "rx/acacia {vs_rx}");
    }

    #[test]
    fn fig11_accuracy_stays_high_for_acacia_and_naive() {
        let res = Resolution::new(720, 480);
        for strategy in [SearchStrategy::ACACIA_DEFAULT, SearchStrategy::Naive] {
            let frames = fig11_frames(strategy, res, 8, 2, 2);
            let correct = frames.iter().filter(|f| f.correct).count();
            let acc = correct as f64 / frames.len() as f64;
            assert!(acc > 0.8, "{} accuracy {acc}", strategy.name());
        }
    }

    #[test]
    fn fig12_contention_is_linear() {
        assert_eq!(contended_time_s(0.25, 4), 1.0);
    }
}
