//! Compute-side experiments: Fig. 3(a,b,e,f,h) and the §7.3 compression
//! microbenchmark.

use crate::table::{fmt_secs, Table};
use acacia_vision::compress::Codec;
use acacia_vision::compute::Device;
use acacia_vision::db::{ObjectDb, CAPTURE_RESOLUTION};
use acacia_vision::feature::{object_features, render_view, Similarity, ViewParams};
use acacia_vision::image::{camera_preview_fps, ImageSpec, Resolution};
use acacia_vision::matcher::{match_pair, MatcherConfig};

/// Fig. 3(a): SURF detection + description time vs resolution × device.
pub fn fig3a() -> Table {
    let mut t = Table::new(
        "Fig 3(a) — SURF detection+description runtime (s)",
        &["resolution", "features", "One+", "i7 (1)", "i7 (8)", "GPU"],
    );
    for res in Resolution::SWEEP {
        let spec = ImageSpec::new(0, res);
        let mut cells = vec![
            res.to_string(),
            format!("{:.1}", acacia_vision::image::expected_features(res)),
        ];
        for dev in Device::FIG3 {
            cells.push(fmt_secs(dev.profile().detect_time_s(spec)));
        }
        t.row(cells);
    }
    t.note("virtual time: calibrated device profiles over the paper's feature counts");
    t
}

/// Data behind Fig. 3(b): per-device single-object match time, seconds,
/// per sweep resolution.
pub fn fig3b_data() -> Vec<(Resolution, Vec<(Device, f64)>)> {
    let cfg = MatcherConfig {
        exec_cap: 48,
        ..MatcherConfig::default()
    };
    let mut out = Vec::new();
    for res in Resolution::SWEEP {
        // One stored object photographed at `res`; the matcher's metered
        // ops at full scale drive the virtual time.
        let train_spec = ImageSpec::new(7, CAPTURE_RESOLUTION);
        let train = object_features(7, train_spec.feature_count());
        let query_spec = ImageSpec::new(7, res);
        let base = object_features(7, query_spec.feature_count());
        let view = render_view(&base, Similarity::from_seed(1), ViewParams::default(), 1);
        let outcome = match_pair(&view, &train, &cfg);
        let per_dev = Device::FIG3
            .iter()
            .map(|&d| (d, d.profile().match_time_s(&outcome.ops)))
            .collect();
        out.push((res, per_dev));
    }
    out
}

/// Fig. 3(b): brute-force matcher runtime vs resolution × device.
pub fn fig3b() -> Table {
    let mut t = Table::new(
        "Fig 3(b) — brute-force object matching runtime (s, one object)",
        &["resolution", "One+", "i7 (1)", "i7 (8)", "GPU"],
    );
    for (res, per_dev) in fig3b_data() {
        let mut cells = vec![res.to_string()];
        for (_, secs) in per_dev {
            cells.push(fmt_secs(secs));
        }
        t.row(cells);
    }
    t.note("real matcher execution; ops metered at full feature counts");
    t
}

/// Fig. 3(e): camera preview FPS vs resolution on the One+ One.
pub fn fig3e() -> Table {
    let mut t = Table::new(
        "Fig 3(e) — One+ One camera preview frames per second",
        &["resolution", "fps"],
    );
    for res in Resolution::CAMERA {
        t.row(vec![
            res.to_string(),
            format!("{:.1}", camera_preview_fps(res)),
        ]);
    }
    t
}

/// Fig. 3(f): sustainable upload FPS vs uplink capacity × codec at the
/// paper's HD upload resolution (1280×720).
pub fn fig3f() -> Table {
    let caps = [5_500_000u64, 10_000_000, 12_000_000];
    let mut t = Table::new(
        "Fig 3(f) — upload FPS vs uplink capacity and compression (1280x720)",
        &["codec", "5.5 Mbps", "10 Mbps", "12 Mbps"],
    );
    let spec = ImageSpec::new(1, Resolution::new(1280, 720));
    for codec in Codec::FIG3F {
        let mut cells = vec![codec.label()];
        for cap in caps {
            cells.push(format!("{:.1}", codec.upload_fps(spec, cap)));
        }
        t.row(cells);
    }
    t
}

/// Data behind Fig. 3(h): (db_size, virtual seconds on i7-8) at each sweep
/// resolution.
pub fn fig3h_data() -> Vec<(Resolution, Vec<(usize, f64)>)> {
    let db = ObjectDb::retail_cached(5, 99);
    let cfg = MatcherConfig {
        exec_cap: 32,
        ..MatcherConfig::default()
    };
    let profile = Device::I7Octa.profile();
    let sizes = [1usize, 5, 10, 25, 50];
    let cells = Resolution::SWEEP
        .iter()
        .map(|&res| (res.to_string(), res))
        .collect();
    let per_res = crate::runner::pmap("fig3h", cells, |res| {
        let target = &db.objects()[0];
        let spec = ImageSpec::new(target.id, res);
        let base = object_features(target.id, spec.feature_count());
        let view = render_view(&base, Similarity::from_seed(3), ViewParams::default(), 3);
        sizes
            .iter()
            .map(|&n| {
                let cands = db.objects().iter().take(n);
                let outcome = db.match_against(&view, cands, &cfg);
                (n, profile.match_time_s(&outcome.ops))
            })
            .collect::<Vec<_>>()
    });
    Resolution::SWEEP.into_iter().zip(per_res).collect()
}

/// Fig. 3(h): match runtime vs database size (8-core i7).
pub fn fig3h() -> Table {
    let mut t = Table::new(
        "Fig 3(h) — match runtime vs database size (i7 8-core)",
        &["resolution", "1 obj", "5 obj", "10 obj", "25 obj", "50 obj"],
    );
    for (res, per_size) in fig3h_data() {
        let mut cells = vec![res.to_string()];
        for (_, secs) in per_size {
            cells.push(fmt_secs(secs));
        }
        t.row(cells);
    }
    t
}

/// §7.3: JPEG-90 encode time and compression ratio on the One+ One.
pub fn sec73_jpeg() -> Table {
    let mut t = Table::new(
        "§7.3 — JPEG 90 grayscale compression on the One+ One",
        &["resolution", "encode time", "size reduction", "paper"],
    );
    let profile = Device::OnePlusOne.profile();
    let cases = [
        (Resolution::new(1280, 720), "53ms / 5.0x"),
        (Resolution::new(960, 720), "38ms / 5.8x"),
        (Resolution::new(720, 480), "23ms / 4.7x"),
    ];
    for (i, (res, paper)) in cases.iter().enumerate() {
        let spec = ImageSpec::new(i as u64 * 11 + 3, *res);
        let secs = Codec::Jpeg(90).encode_time_s(spec, &profile);
        let ratio = spec.raw_gray_bytes() as f64 / Codec::Jpeg(90).bytes(spec) as f64;
        t.row(vec![
            res.to_string(),
            fmt_secs(secs),
            format!("{ratio:.1}x"),
            paper.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_has_five_resolutions() {
        assert_eq!(fig3a().len(), 5);
    }

    #[test]
    fn fig3b_device_ordering_holds() {
        for (res, per_dev) in fig3b_data() {
            let times: Vec<f64> = per_dev.iter().map(|&(_, s)| s).collect();
            // One+ > i7(1) > i7(8) > GPU.
            for w in times.windows(2) {
                assert!(w[0] > w[1], "{res}: {times:?}");
            }
        }
    }

    #[test]
    fn fig3h_is_linear_in_db_size() {
        let data = fig3h_data();
        for (res, per_size) in &data {
            // The matched object pays the extra (symmetry) pass, adding a
            // constant offset; the tail must scale linearly: doubling the
            // DB from 25 to 50 objects should roughly double the time.
            let (_, t25) = per_size[3];
            let (_, t50) = per_size[4];
            let ratio = t50 / t25;
            assert!(
                (1.7..2.2).contains(&ratio),
                "{res}: 25→50 objects scaled {ratio}, expected ~2"
            );
        }
        // Anchor: 960x720 at 50 objects lands within 3x of the paper's
        // ~1.2 s (our cascade early-exits the reverse pass — EXPERIMENTS.md).
        let (_, per_size) = &data[3];
        let t50 = per_size[4].1;
        assert!((0.35..1.6).contains(&t50), "50-object time {t50}");
    }
}
