//! Localization experiments: the Fig. 6 rxPower/SNR walking traces and the
//! Fig. 9(b) landmark-count accuracy sweep.

use crate::table::Table;
use acacia_d2d::channel::RadioChannel;
use acacia_d2d::discovery::ProximityWorld;
use acacia_d2d::modem::Modem;
use acacia_d2d::service::SubscriptionFilter;
use acacia_geo::floor::{FloorPlan, WalkPath};
use acacia_geo::pathloss::PathLossModel;
use acacia_geo::point::Point;
use acacia_geo::trilateration::{trilaterate, RangeMeasurement};
use acacia_geo::FittedPathLoss;

/// One sample of the Fig. 6 walking trace.
#[derive(Debug, Clone)]
pub struct WalkSample {
    /// Time into the walk, seconds.
    pub t_s: f64,
    /// Per-landmark readings: (name, rxPower dBm, SNR dB).
    pub readings: Vec<(String, f64, f64)>,
}

/// Generate the Fig. 6(b,c) trace: a 550 s walk past three landmarks,
/// sampling every discovery period.
pub fn fig6_trace(seed: u64) -> Vec<WalkSample> {
    let floor = FloorPlan::walkway();
    let channel = RadioChannel::new(PathLossModel::indoor_default(), seed);
    let world = ProximityWorld::from_floor(&floor, "walk", channel);
    let walk = WalkPath::fig6_walk();
    let mut modem = Modem::new();
    modem.subscribe(SubscriptionFilter::service_wide("walk"));
    let mut out = Vec::new();
    let period = world.period_s;
    let mut t = 0.0;
    while t <= walk.duration_s() {
        let pos = walk.position_at(t);
        let tick = world.tick_at(t);
        let readings = world
            .scan(&mut modem, pos, tick)
            .into_iter()
            .map(|ev| (ev.publisher, ev.rx_power_dbm, ev.snr_db))
            .collect();
        out.push(WalkSample { t_s: t, readings });
        t += period;
    }
    out
}

/// Pearson correlation between two equal-length slices.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Correlation of rxPower and SNR with −log10(distance) along the walk —
/// quantifying the paper's argument for choosing rxPower.
pub fn fig6_correlations(seed: u64) -> (f64, f64) {
    let floor = FloorPlan::walkway();
    let walk = WalkPath::fig6_walk();
    let trace = fig6_trace(seed);
    let mut neglogd = Vec::new();
    let mut rx = Vec::new();
    let mut snr = Vec::new();
    for s in &trace {
        let pos = walk.position_at(s.t_s);
        for (name, rxp, snrv) in &s.readings {
            let lm = floor.landmark(name).expect("trace landmark exists");
            neglogd.push(-(lm.pos.distance(pos).max(0.1)).log10());
            rx.push(*rxp);
            snr.push(*snrv);
        }
    }
    (pearson(&neglogd, &rx), pearson(&neglogd, &snr))
}

/// Fig. 6: summary of the walking-trace experiment.
pub fn fig6() -> Table {
    let (rx_corr, snr_corr) = fig6_correlations(21);
    let trace = fig6_trace(21);
    let mut t = Table::new(
        "Fig 6 — LTE-direct readings along the walk (sampled rows)",
        &["t (s)", "landmark", "rxPower (dBm)", "SNR (dB)"],
    );
    for s in trace.iter().step_by(14) {
        for (name, rx, snr) in &s.readings {
            t.row(vec![
                format!("{:.0}", s.t_s),
                name.clone(),
                format!("{rx:.1}"),
                format!("{snr:.1}"),
            ]);
        }
    }
    t.note(&format!(
        "correlation with -log10(distance): rxPower {rx_corr:.3} vs SNR {snr_corr:.3} (paper: rxPower is the reliable input)"
    ));
    t
}

/// Fig. 9(b) data: per landmark-count k, (best, mean, worst) mean
/// Euclidean error in metres across all C(7,k) landmark subsets evaluated
/// over the 24 checkpoints.
pub fn fig9b_data(seed: u64) -> Vec<(usize, f64, f64, f64)> {
    let floor = FloorPlan::retail_store();
    let model = PathLossModel::indoor_default();
    let channel = RadioChannel::new(model, seed);
    let world = ProximityWorld::from_floor(&floor, "acme", channel);
    let fit = {
        let samples: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&d| (d, model.rx_power_dbm(d)))
            .collect();
        FittedPathLoss::fit(&samples).expect("calibration")
    };

    // Average rxPower per (checkpoint, landmark) over several discovery
    // periods.
    let mut readings: Vec<Vec<Option<f64>>> = Vec::new();
    for cp in &floor.checkpoints {
        let mut modem = Modem::new();
        modem.subscribe(SubscriptionFilter::service_wide("acme"));
        let mut acc: Vec<Vec<f64>> = vec![Vec::new(); floor.landmarks.len()];
        for tick in 0..6 {
            for ev in world.scan(&mut modem, cp.pos, tick) {
                if let Some(idx) = floor.landmarks.iter().position(|l| l.name == ev.publisher) {
                    acc[idx].push(ev.rx_power_dbm);
                }
            }
        }
        readings.push(
            acc.into_iter()
                .map(|v| {
                    if v.is_empty() {
                        None
                    } else {
                        Some(v.iter().sum::<f64>() / v.len() as f64)
                    }
                })
                .collect(),
        );
    }

    // Each (k, subset) placement is an independent cell; the per-k
    // aggregation below walks the results in cell order, so the f64
    // accumulation order matches the serial run exactly.
    let cells: Vec<(String, (usize, Vec<usize>))> = (3..=7usize)
        .flat_map(|k| {
            combinations(7, k)
                .into_iter()
                .map(move |subset| (format!("k={k} {subset:?}"), (k, subset)))
        })
        .collect();
    let ks: Vec<usize> = cells.iter().map(|(_, (k, _))| *k).collect();
    let subset_means = crate::runner::pmap("fig9b", cells, |(_, subset)| -> Option<f64> {
        let mut total = 0.0;
        let mut n = 0usize;
        for (cp, cp_readings) in floor.checkpoints.iter().zip(&readings) {
            let ms: Vec<RangeMeasurement> = subset
                .iter()
                .filter_map(|&li| {
                    let rx = (*cp_readings.get(li)?)?;
                    Some(RangeMeasurement::new(
                        floor.landmarks[li].pos,
                        fit.predict_distance(rx),
                    ))
                })
                .collect();
            if ms.len() < 3 {
                continue;
            }
            if let Ok(sol) = trilaterate(&ms) {
                total += clamp_to_floor(&floor, sol.position).distance(cp.pos);
                n += 1;
            }
        }
        (n > 0).then(|| total / n as f64)
    });

    let mut out = Vec::new();
    for k in 3..=7usize {
        let means: Vec<f64> = ks
            .iter()
            .zip(&subset_means)
            .filter(|(&ck, _)| ck == k)
            .filter_map(|(_, m)| *m)
            .collect();
        let best = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = means.iter().cloned().fold(0.0f64, f64::max);
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        out.push((k, best, mean, worst));
    }
    out
}

/// Clamp wildly-out-of-bounds estimates back to the floor edge (users are
/// inside the store).
fn clamp_to_floor(floor: &FloorPlan, p: Point) -> Point {
    Point::new(
        p.x.clamp(floor.bounds.min.x, floor.bounds.max.x),
        p.y.clamp(floor.bounds.min.y, floor.bounds.max.y),
    )
}

/// All k-subsets of 0..n.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

/// Fig. 9(a) / Fig. 6(a): the evaluation floor plans, rendered.
pub fn fig9a() -> Table {
    let retail = FloorPlan::retail_store();
    let walkway = FloorPlan::walkway();
    let mut t = Table::new(
        "Fig 9(a) & 6(a) — evaluation floor plans (L = landmark, c = checkpoint, | = section boundary)",
        &["plan", "size", "landmarks", "checkpoints"],
    );
    t.row(vec![
        "retail store".into(),
        "28 x 15 m".into(),
        retail.landmarks.len().to_string(),
        retail.checkpoints.len().to_string(),
    ]);
    t.row(vec![
        "walkway".into(),
        "50 x 20 m".into(),
        walkway.landmarks.len().to_string(),
        walkway.checkpoints.len().to_string(),
    ]);
    t.block(&format!("retail store (Fig 9a):\n{}", retail.ascii_art()));
    t.block(&format!("walkway (Fig 6a):\n{}", walkway.ascii_art()));
    t
}

/// Fig. 9(b): localization accuracy vs number (and placement) of landmarks.
pub fn fig9b() -> Table {
    let mut t = Table::new(
        "Fig 9(b) — localization error vs number of landmarks (m)",
        &["landmarks", "best placement", "mean", "worst placement"],
    );
    for (k, best, mean, worst) in fig9b_data(17) {
        t.row(vec![
            k.to_string(),
            format!("{best:.2}"),
            format!("{mean:.2}"),
            format!("{worst:.2}"),
        ]);
    }
    t.note("paper: ~3 m mean error with 7 landmarks; best/worst gap shrinks as landmarks grow");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinations_counts() {
        assert_eq!(combinations(7, 3).len(), 35);
        assert_eq!(combinations(7, 7).len(), 1);
        assert_eq!(combinations(4, 2).len(), 6);
    }

    #[test]
    fn rxpower_correlates_better_than_snr() {
        let (rx, snr) = fig6_correlations(3);
        assert!(rx > 0.85, "rxPower correlation {rx}");
        // SNR tracks rxPower inside its 25 dB window, so the gap is modest
        // over a whole walk; the decisive difference is SNR's saturation
        // near landmarks (asserted in acacia-d2d's channel tests).
        assert!(rx > snr + 0.02, "rx {rx} vs snr {snr}");
    }

    #[test]
    fn walk_trace_peaks_in_landmark_order() {
        // rxPower from L1 peaks before L2's, which peaks before L3's.
        let trace = fig6_trace(3);
        let peak_time = |name: &str| {
            trace
                .iter()
                .flat_map(|s| {
                    s.readings
                        .iter()
                        .filter(|(n, ..)| n == name)
                        .map(move |(_, rx, _)| (s.t_s, *rx))
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("landmark heard")
                .0
        };
        let (t1, t2, t3) = (peak_time("L1"), peak_time("L2"), peak_time("L3"));
        assert!(t1 < t2 && t2 < t3, "peaks at {t1}, {t2}, {t3}");
    }

    #[test]
    fn more_landmarks_reduce_error_and_spread() {
        let data = fig9b_data(5);
        let (_, _, mean3, worst3) = data[0];
        let (_, best7, mean7, worst7) = data[4];
        assert!(mean7 <= mean3 + 0.5, "mean3 {mean3} vs mean7 {mean7}");
        assert!(
            worst7 - best7 < worst3 + 0.01,
            "spread should shrink: k3 worst {worst3}, k7 spread {}",
            worst7 - best7
        );
        // Paper's headline: ~3 m average with all seven landmarks.
        assert!((1.0..5.5).contains(&mean7), "7-landmark mean {mean7}");
    }
}
