//! The loaded benchmark: multi-UE handovers while background traffic is
//! swept through and above the shared core's capacity.
//!
//! Extends the paper's Fig. 3(g) single-flow congestion measurement to
//! the scenario its §8 architecture exists for: N concurrent AR sessions
//! handing over between MEC cells while the SGW-U → PGW-U leg is flooded
//! past its (narrowed, 100 Mbit/s) capacity. The cloud path's latency and
//! loss collapse with load — that is the baseline ACACIA escapes — while
//! the dedicated-bearer MEC sessions complete every frame with bounded
//! per-handover interruption, because their traffic terminates at the
//! eNB-local gateway and rides a higher DSCP class on any link it does
//! share (the strict-priority scheduler in `acacia_simnet::link`).
//!
//! Every column is deterministic, so stdout is byte-identical across
//! `--jobs` worker counts; CI compares `--jobs 1` against `--jobs 4` and
//! greps the per-class drop counters.

use crate::runner;
use crate::table::Table;
use acacia::loaded::{LoadedConfig, LoadedReport, LoadedScenario};
use acacia_simnet::stats::Series;

/// UE populations swept by the benchmark.
pub const UE_COUNTS: [usize; 2] = [4, 16];

/// Background loads swept, Mbit/s, through and above the 100 Mbit/s
/// core: unloaded, just below, just above, and far above capacity.
pub const LOADS_MBPS: [u64; 4] = [0, 90, 110, 160];

/// Loaded sweep data: one report per (UE count, load) cell.
pub fn loaded_reports() -> Vec<LoadedReport> {
    let seed = crate::seed();
    let mut cells = Vec::with_capacity(UE_COUNTS.len() * LOADS_MBPS.len());
    for &n in &UE_COUNTS {
        for &mbps in &LOADS_MBPS {
            cells.push((format!("N={n} bg={mbps}M"), (n, mbps)));
        }
    }
    runner::pmap("loaded", cells, move |(n, mbps)| {
        let mut cfg = LoadedConfig::figure(n, mbps);
        cfg.scale.seed = seed;
        let report = LoadedScenario::build(cfg).run();
        runner::report_events(report.events_processed);
        report
    })
}

/// Per-class queue drops on the core leg, e.g. `c0:0 c1:939`.
fn drops_cell(r: &LoadedReport) -> String {
    if r.core_classes.is_empty() {
        return "-".to_string();
    }
    r.core_classes
        .iter()
        .map(|&(c, s)| format!("c{c}:{}", s.drops_queue))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Loaded: congested multi-UE handovers, MEC path vs cloud path.
pub fn loaded() -> Table {
    let reports = loaded_reports();
    let mut t = Table::new(
        "Loaded — N-UE handovers under core congestion (100 Mbit/s shared core)",
        &[
            "UEs",
            "bg Mb/s",
            "frames",
            "handovers",
            "int p50",
            "int max",
            "mec p50",
            "cloud p50",
            "cloud p95",
            "cloud lost",
            "retx",
            "core drops",
            "wedged",
        ],
    );
    for r in &reports {
        let frames_done: u64 = r.ues.iter().map(|u| u.frames_done).sum();
        let ints = Series::from_iter(r.interruptions_ms());
        let mec = Series::from_iter(r.mec_rtts_ms());
        let cloud = Series::from_iter(r.probe_rtts_ms());
        t.row(vec![
            r.ue_count.to_string(),
            (r.bg_rate_bps / 1_000_000).to_string(),
            format!("{}/{}", frames_done, r.frames_requested * r.ue_count as u64),
            r.total_handovers().to_string(),
            format!("{:.1} ms", ints.median()),
            format!("{:.1} ms", ints.max()),
            format!("{:.2} ms", mec.median()),
            format!("{:.1} ms", cloud.median()),
            format!("{:.1} ms", cloud.percentile(95.0)),
            format!("{}/{}", r.probes_lost(), r.probes_sent()),
            r.total_retransmissions().to_string(),
            drops_cell(r),
            r.wedged().to_string(),
        ]);
    }
    t.note("background CBR floods the SGW-U -> PGW-U leg after every dedicated bearer is");
    t.note("placed; cloud probes share that leg (best-effort class), MEC sessions terminate");
    t.note("at the eNB-local gateway. Above 100 Mb/s the cloud path saturates toward the");
    t.note("~1 s queue limit and drops (per-class 'cN:drops' counters), while 'int max'");
    t.note("(per-handover interruption) stays bounded and 'wedged' stays 0 at every N.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The assembled sweep must be byte-identical no matter how many
    /// workers raced over the grid (smoke scale; figure scale is
    /// compared across `--jobs` in CI).
    #[test]
    fn loaded_grid_is_byte_identical_across_worker_counts() {
        let render = |jobs: usize| {
            runner::set_jobs(Some(jobs));
            let grid = vec![
                ("N=2 bg=0M".to_string(), (2usize, 0u64)),
                ("N=2 bg=110M".to_string(), (2usize, 110u64)),
                ("N=3 bg=110M".to_string(), (3usize, 110u64)),
            ];
            let reports = runner::pmap("loaded-smoke", grid, |(n, mbps)| {
                LoadedScenario::build(LoadedConfig::smoke(n, mbps)).run()
            });
            runner::set_jobs(None);
            format!("{reports:?}")
        };
        let serial = render(1);
        assert_eq!(serial, render(4));
        // Every cell completes every session, congested ones included.
        assert!(serial.contains("frames_done: 4"));
        assert!(!serial.contains("frames_done: 3"));
        assert!(!serial.contains("frames_done: 2,"));
    }
}
