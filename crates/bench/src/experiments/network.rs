//! Network-side experiments: Fig. 3(c,d,g), Fig. 8, Fig. 10(a,b) and the
//! §4 control-overhead table.

use crate::runner;
use crate::table::{fmt_bps, fmt_secs, Table};
use acacia_lte::network::{LteConfig, LteNetwork};
use acacia_lte::qci::Qci;
use acacia_lte::switch::{FlowSwitch, SwitchCosts};
use acacia_lte::ue::AppSelector;
use acacia_lte::wire::{FlowActionSpec, FlowMatchSpec, PolicyRule, Protocol};
use acacia_simnet::cloud::Ec2Region;
use acacia_simnet::link::LinkConfig;
use acacia_simnet::packet::proto;
use acacia_simnet::prelude::*;
use acacia_simnet::traffic::{Reflector, Sink, UdpSource};
use acacia_simnet::transport::{GreedyFlow, GreedyReceiver, PingAgent};
use std::net::Ipv4Addr;

/// RTT samples (ms) from a UE to an EC2 region through the full LTE stack.
pub fn fig3c_data(region: Ec2Region, probes: u64, seed: u64) -> Series {
    let mut net = LteNetwork::new(LteConfig {
        seed,
        ..LteConfig::default()
    });
    let (_, cloud_addr) = net.add_cloud_server(Box::new(Reflector::new()), region.link_config());
    let ue_ip = net.attach(0);
    let agent = net.connect_ue_app(
        0,
        Box::new(PingAgent::new(
            ue_ip,
            cloud_addr,
            Duration::from_millis(100),
            probes,
        )),
        AppSelector::protocol(proto::ICMP),
    );
    let now = net.sim.now();
    net.sim.schedule_timer(agent, now, PingAgent::KICKOFF);
    net.run_for(Duration::from_millis(100 * probes + 2_000));
    Series::from_durations_ms(net.sim.node_ref::<PingAgent>(agent).rtts())
}

/// Fig. 3(c): LTE → EC2 RTT distribution per region.
pub fn fig3c() -> Table {
    let mut t = Table::new(
        "Fig 3(c) — LTE RTT to EC2 (ms)",
        &["region", "p10", "p25", "median", "p75", "p90", "p95"],
    );
    let cells = Ec2Region::ALL
        .iter()
        .map(|&r| (r.name().to_string(), r))
        .collect();
    let series = runner::pmap("fig3c", cells, |region| fig3c_data(region, 300, 7));
    for (region, s) in Ec2Region::ALL.into_iter().zip(series) {
        t.row(vec![
            region.name().to_string(),
            format!("{:.1}", s.percentile(10.0)),
            format!("{:.1}", s.percentile(25.0)),
            format!("{:.1}", s.median()),
            format!("{:.1}", s.percentile(75.0)),
            format!("{:.1}", s.percentile(90.0)),
            format!("{:.1}", s.percentile(95.0)),
        ]);
    }
    t.note("paper: California median ~70 ms; Oregon/Virginia higher; tail to 180 ms");
    t
}

/// Measured uplink goodput (bps) through a bottleneck shaped like the
/// region's radio uplink.
pub fn fig3d_data(region: Ec2Region, excellent: bool, seed: u64) -> f64 {
    let mut sim = Simulator::new(seed);
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let tx = sim.add_node(Box::new(GreedyFlow::new(
        (src, 5001),
        (dst, 5001),
        Instant::ZERO,
        Instant::from_secs(10),
    )));
    let rx = sim.add_node(Box::new(GreedyReceiver::new(dst)));
    let fwd = LinkConfig::rate_limited(
        region.uplink_bps(excellent),
        region.one_way_delay() + Duration::from_micros(6_000),
    )
    .with_queue(256 * 1024);
    let back = LinkConfig::delay_only(region.one_way_delay() + Duration::from_micros(6_000));
    sim.connect_asymmetric((tx, 0), (rx, 0), fwd, back);
    sim.schedule_timer(tx, Instant::ZERO, GreedyFlow::KICKOFF);
    sim.run_until(Instant::from_secs(11));
    sim.node_ref::<GreedyReceiver>(rx).mean_bps(10)
}

/// Fig. 3(d): uplink bandwidth by region and signal quality.
pub fn fig3d() -> Table {
    let mut t = Table::new(
        "Fig 3(d) — LTE uplink bandwidth to EC2",
        &["region", "excellent (4/4)", "fair (2/4)"],
    );
    let cells = Ec2Region::ALL
        .iter()
        .flat_map(|&r| {
            [true, false].map(|excellent| {
                let grade = if excellent { "excellent" } else { "fair" };
                (format!("{} {grade}", r.name()), (r, excellent))
            })
        })
        .collect();
    let goodputs = runner::pmap("fig3d", cells, |(region, excellent)| {
        fig3d_data(region, excellent, 3)
    });
    for (region, pair) in Ec2Region::ALL.iter().zip(goodputs.chunks(2)) {
        t.row(vec![
            region.name().to_string(),
            fmt_bps(pair[0]),
            fmt_bps(pair[1]),
        ]);
    }
    t
}

/// One Fig. 3(g) point: mean AR-packet latency (seconds) with `bg_bps` of
/// Poisson background through a shared 100 Mbps gateway whose unloaded
/// round-trip is `base_rtt_ms`.
pub fn fig3g_point(base_rtt_ms: u64, bg_bps: u64, seed: u64) -> f64 {
    let mut sim = Simulator::new(seed);
    let ar_src = Ipv4Addr::new(10, 0, 0, 1);
    let bg_src = Ipv4Addr::new(10, 0, 0, 2);
    let server = Ipv4Addr::new(10, 0, 0, 9);

    // Shared gateway chain: sources feed the GW over fast access links;
    // the GW's *egress* is the shared 100 Mbps hop with a generous
    // (bufferbloated) queue, plus propagation making up the base RTT.
    let one_way = Duration::from_micros(base_rtt_ms * 1000 / 2);
    let gw_in = LinkConfig::rate_limited(1_000_000_000, Duration::ZERO).with_queue(4 * 1024 * 1024);
    let gw_out = LinkConfig::rate_limited(100_000_000, one_way).with_queue(25 * 1024 * 1024);

    let mut table = RouteTable::new();
    table.add(Ipv4Net::default_route(), 1);
    let gw = sim.add_node(Box::new(Router::new(table)));
    let sink = sim.add_node(Box::new(Sink::new()));
    sim.connect_simplex((gw, 1), (sink, 0), gw_out);

    // AR uplink: ~10 Mbps of frame traffic (8 fps × ~150 KB HD frames).
    let ar = sim.add_node(Box::new(
        UdpSource::cbr((ar_src, 9000), (server, 9000), 10_000_000, 1_400)
            .window(Instant::ZERO, Instant::from_secs(20)),
    ));
    sim.connect_simplex((ar, 0), (gw, 0), gw_in.clone());
    sim.schedule_timer(ar, Instant::ZERO, UdpSource::KICKOFF);

    if bg_bps > 0 {
        let bg = sim.add_node(Box::new(
            UdpSource::cbr((bg_src, 7000), (server, 7000), bg_bps, 1_400)
                .poisson()
                .window(Instant::ZERO, Instant::from_secs(20)),
        ));
        sim.connect_simplex((bg, 0), (gw, 0), gw_in);
        sim.schedule_timer(bg, Instant::ZERO, UdpSource::KICKOFF);
    }
    sim.run_until(Instant::from_secs(21));

    let s = sim.node_ref::<Sink>(sink);
    let ar_delays: Vec<Duration> = s.delays().to_vec();
    // Forward delay already includes the propagation; add the (uncongested)
    // base return path — the paper measures request/response latency and
    // responses are tiny.
    let fwd = Series::from_durations_ms(&ar_delays).mean() / 1e3;
    fwd + one_way.secs_f64()
}

/// Fig. 3(g): latency vs background traffic for three base RTTs.
pub fn fig3g() -> Table {
    let mut t = Table::new(
        "Fig 3(g) — network latency vs background traffic (one S-PGW, 100 Mbps)",
        &["bg (Mbps)", "RTT 8ms", "RTT 18ms", "RTT 70ms"],
    );
    let bgs: Vec<u64> = (0..=100u64).step_by(10).collect();
    let bases = [8u64, 18, 70];
    let cells = bgs
        .iter()
        .flat_map(|&bg| bases.map(|base| (format!("bg={bg} rtt={base}ms"), (base, bg))))
        .collect();
    let latencies = runner::pmap("fig3g", cells, |(base, bg)| {
        fig3g_point(base, bg * 1_000_000, 5)
    });
    for (bg, row) in bgs.iter().zip(latencies.chunks(bases.len())) {
        let mut cells = vec![format!("{bg}")];
        cells.extend(row.iter().map(|&lat| fmt_secs(lat)));
        t.row(cells);
    }
    t.note("AR offered load ~10 Mbps rides alongside the background; saturation → bufferbloat");
    t
}

/// Fig. 8 data: per-second goodput (bps) through a GW-U with the given
/// processing model, over `secs` seconds.
pub fn fig8_data(costs: SwitchCosts, secs: u64, seed: u64) -> Vec<f64> {
    let mut sim = Simulator::new(seed);
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let tx = sim.add_node(Box::new(GreedyFlow::new(
        (src, 5001),
        (dst, 5001),
        Instant::ZERO,
        Instant::from_secs(secs),
    )));
    let mut sw = FlowSwitch::new(Ipv4Addr::new(10, 0, 0, 100), costs);
    sw.install(
        1,
        FlowMatchSpec {
            teid: None,
            dst: Some(dst),
            src: None,
        },
        vec![FlowActionSpec::Output { port: 2 }],
    );
    let sw = sim.add_node(Box::new(sw));
    let rx = sim.add_node(Box::new(GreedyReceiver::new(dst)));
    let line = LinkConfig::rate_limited(1_000_000_000, Duration::from_micros(200))
        .with_queue(2 * 1024 * 1024);
    sim.connect_simplex((tx, 0), (sw, 1), line.clone());
    sim.connect_simplex((sw, 2), (rx, 0), line);
    // Acks return directly.
    sim.connect_simplex(
        (rx, 0),
        (tx, 0),
        LinkConfig::delay_only(Duration::from_micros(200)),
    );
    sim.schedule_timer(tx, Instant::ZERO, GreedyFlow::KICKOFF);
    sim.run_until(Instant::from_secs(secs + 1));
    sim.node_ref::<GreedyReceiver>(rx).throughput_series_bps()
}

/// Fig. 8: data-plane throughput, OpenEPC vs ACACIA vs IDEAL.
pub fn fig8() -> Table {
    let mut t = Table::new(
        "Fig 8 — GW-U data-plane throughput over 60 s (Iperf-like TCP)",
        &["variant", "mean", "p5 second", "p95 second"],
    );
    let variants = [
        ("OpenEPC (user space)", SwitchCosts::openepc_userspace()),
        ("ACACIA (OVS fast path)", SwitchCosts::acacia_ovs()),
        ("IDEAL (no GW cost)", SwitchCosts::ideal()),
    ];
    let cells = variants
        .iter()
        .map(|&(name, costs)| (name.to_string(), costs))
        .collect();
    let throughputs = runner::pmap("fig8", cells, |costs| fig8_data(costs, 60, 2));
    for ((name, _), series) in variants.iter().zip(throughputs) {
        let stats = Series::from_iter(series.iter().copied().skip(3)); // skip slow-start
        t.row(vec![
            name.to_string(),
            fmt_bps(stats.mean()),
            fmt_bps(stats.percentile(5.0)),
            fmt_bps(stats.percentile(95.0)),
        ]);
    }
    t.note("1 Gbps line rate; OpenEPC pays ~40us/packet in user space for every packet");
    t
}

/// §4: control overhead of one idle-release + re-establish cycle, measured
/// by running the real procedures.
pub fn sec4_ctrl() -> Table {
    let mut net = LteNetwork::new(LteConfig::default());
    net.attach(0);
    net.log.clear();
    net.trigger_idle_release(0);
    net.service_request(0);

    let mut t = Table::new(
        "§4 — control overhead of one release + re-establish cycle",
        &["protocol", "messages", "bytes"],
    );
    for p in [Protocol::S1apSctp, Protocol::Gtpv2, Protocol::OpenFlow] {
        t.row(vec![
            p.name().to_string(),
            net.log.count(p).to_string(),
            net.log.bytes(p).to_string(),
        ]);
    }
    t.row(vec![
        "total (core)".to_string(),
        net.log.core_count().to_string(),
        net.log.core_bytes().to_string(),
    ]);
    let cycle = net.log.core_bytes();
    t.note(&format!(
        "per-day projections: typical 929 cycles = {:.2} MB; worst case 7200 cycles = {:.1} MB",
        cycle as f64 * 929.0 / 1e6,
        cycle as f64 * 7200.0 / 1e6
    ));
    t.note("paper: 15 messages / 2914 bytes (SCTP 7/1138, GTPv2 4/352, OpenFlow 4/1424); 2.58 MB & ~20 MB per day");
    t
}

/// Fig. 10(a) data: RTT series (ms) over a dedicated MEC bearer at `qci`.
pub fn fig10a_data(qci: Qci, probes: u64, seed: u64) -> Series {
    let mut net = LteNetwork::new(LteConfig {
        seed,
        ..LteConfig::default()
    });
    let (_, mec_addr) = net.add_mec_server(Box::new(Reflector::new()));
    let ue_ip = net.attach(0);
    net.activate_dedicated_bearer(
        0,
        PolicyRule {
            service_id: 1,
            ue_addr: ue_ip,
            server_addr: mec_addr,
            server_port: 0,
            qci,
            install: true,
        },
    );
    // A competing stream on the default bearer loads the radio schedulers
    // (~10 of the 12 Mbps uplink) so the QCI scheduling priority of the
    // dedicated bearer becomes visible.
    let (_, cloud_addr) = net.add_cloud_server(
        Box::new(Reflector::new()),
        LinkConfig::delay_only(Duration::from_millis(1)),
    );
    let noise = net.connect_ue_app(
        0,
        Box::new(UdpSource::cbr((ue_ip, 7100), (cloud_addr, 7100), 10_000_000, 1_200).poisson()),
        AppSelector::port(7100),
    );
    net.sim
        .schedule_timer(noise, net.sim.now(), UdpSource::KICKOFF);

    let agent = net.connect_ue_app(
        0,
        Box::new(PingAgent::new(
            ue_ip,
            mec_addr,
            Duration::from_millis(50),
            probes,
        )),
        AppSelector::protocol(proto::ICMP),
    );
    let now = net.sim.now();
    net.sim.schedule_timer(agent, now, PingAgent::KICKOFF);
    net.run_for(Duration::from_millis(50 * probes + 2_000));
    Series::from_durations_ms(net.sim.node_ref::<PingAgent>(agent).rtts())
}

/// Fig. 10(a): RTT per QCI class over the dedicated MEC bearer.
pub fn fig10a() -> Table {
    let mut t = Table::new(
        "Fig 10(a) — UE↔MEC RTT by QCI of the dedicated bearer (ms)",
        &["QCI", "p5", "median", "p95"],
    );
    let cells = Qci::NON_GBR
        .iter()
        .map(|&qci| (qci.to_string(), qci))
        .collect();
    let series = runner::pmap("fig10a", cells, |qci| fig10a_data(qci, 200, 11));
    for (qci, s) in Qci::NON_GBR.into_iter().zip(series) {
        t.row(vec![
            qci.to_string(),
            format!("{:.1}", s.percentile(5.0)),
            format!("{:.1}", s.median()),
            format!("{:.1}", s.percentile(95.0)),
        ]);
    }
    t.note("paper: 95% of RTTs within ~15 ms; eNB↔MEC accounts for only 1.6 ms");
    t
}

/// The three architectures of Fig. 10(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig10bArch {
    /// Conventional EPC: far server through the shared core.
    Conventional,
    /// MEC-located server, but traffic still through the shared core GWs.
    EpcWithMec,
    /// ACACIA: dedicated bearer to the local gateway, isolated from the
    /// background.
    Acacia,
}

/// One Fig. 10(b) point: mean AR request latency (s) under `bg_bps` of
/// background through the (100 Mbps) core.
pub fn fig10b_point(arch: Fig10bArch, bg_bps: u64, seed: u64) -> f64 {
    let mut net = LteNetwork::new(LteConfig {
        seed,
        core_rate_bps: 100_000_000,
        core_queue_bytes: 25 * 1024 * 1024,
        ..LteConfig::default()
    });
    let (server_addr, is_mec) = match arch {
        Fig10bArch::Conventional => {
            let (_, a) = net.add_cloud_server(
                Box::new(Reflector::new()),
                LinkConfig::delay_only(Duration::from_millis(28)),
            );
            (a, false)
        }
        Fig10bArch::EpcWithMec => {
            let (_, a) = net.add_cloud_server(
                Box::new(Reflector::new()),
                LinkConfig::delay_only(Duration::from_micros(500)),
            );
            (a, false)
        }
        Fig10bArch::Acacia => {
            let (_, a) = net.add_mec_server(Box::new(Reflector::new()));
            (a, true)
        }
    };
    let ue_ip = net.attach(0);
    if is_mec {
        net.activate_dedicated_bearer(
            0,
            PolicyRule {
                service_id: 1,
                ue_addr: ue_ip,
                server_addr,
                server_port: 0,
                qci: Qci(7),
                install: true,
            },
        );
    }
    if bg_bps > 0 {
        let t0 = net.sim.now();
        net.start_background_traffic(bg_bps, t0, Instant::MAX);
    }
    // AR offered load toward the server (~10 Mbps), plus RTT probes.
    let ar = net.connect_ue_app(
        0,
        Box::new(UdpSource::cbr(
            (ue_ip, 9000),
            (server_addr, 9000),
            10_000_000,
            1_200,
        )),
        AppSelector::port(9000),
    );
    let now = net.sim.now();
    net.sim.schedule_timer(ar, now, UdpSource::KICKOFF);
    let agent = net.connect_ue_app(
        0,
        Box::new(PingAgent::new(
            ue_ip,
            server_addr,
            Duration::from_millis(250),
            40,
        )),
        AppSelector::protocol(proto::ICMP),
    );
    let t1 = net.sim.now() + Duration::from_secs(3);
    net.sim.schedule_timer(agent, t1, PingAgent::KICKOFF);
    net.run_for(Duration::from_secs(16));
    let rtts = net.sim.node_ref::<PingAgent>(agent).rtts();
    if rtts.is_empty() {
        // Total loss under overload: report the queue-bound worst case.
        return 2.5;
    }
    Series::from_durations_ms(rtts).mean() / 1e3
}

/// Fig. 10(b): latency vs background traffic across architectures.
pub fn fig10b() -> Table {
    let mut t = Table::new(
        "Fig 10(b) — AR latency vs background traffic (s)",
        &["bg (Mbps)", "Conventional EPC", "EPC with MEC", "ACACIA"],
    );
    let bgs: Vec<u64> = (0..=100u64).step_by(10).collect();
    let arches = [
        Fig10bArch::Conventional,
        Fig10bArch::EpcWithMec,
        Fig10bArch::Acacia,
    ];
    let cells = bgs
        .iter()
        .flat_map(|&bg| arches.map(|arch| (format!("bg={bg} {arch:?}"), (arch, bg))))
        .collect();
    let latencies = runner::pmap("fig10b", cells, |(arch, bg)| {
        fig10b_point(arch, bg * 1_000_000, 13)
    });
    for (bg, row) in bgs.iter().zip(latencies.chunks(arches.len())) {
        let mut cells = vec![format!("{bg}")];
        cells.extend(row.iter().map(|&lat| fmt_secs(lat)));
        t.row(cells);
    }
    t.note("paper: location dominates until ~90 Mbps; beyond saturation only ACACIA stays low");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3c_california_fastest() {
        let ca = fig3c_data(Ec2Region::California, 50, 1).median();
        let va = fig3c_data(Ec2Region::Virginia, 50, 1).median();
        assert!(ca < va, "CA {ca} vs VA {va}");
        assert!((55.0..90.0).contains(&ca), "CA median {ca}");
    }

    #[test]
    fn fig3d_signal_quality_matters() {
        let good = fig3d_data(Ec2Region::California, true, 1);
        let fair = fig3d_data(Ec2Region::California, false, 1);
        assert!(good > 1.5 * fair, "good {good} fair {fair}");
        assert!(good > 8e6 && good < 12.5e6, "good {good}");
    }

    #[test]
    fn fig8_ordering() {
        let openepc =
            Series::from_iter(fig8_data(SwitchCosts::openepc_userspace(), 12, 1)).percentile(75.0);
        let acacia =
            Series::from_iter(fig8_data(SwitchCosts::acacia_ovs(), 12, 1)).percentile(75.0);
        let ideal = Series::from_iter(fig8_data(SwitchCosts::ideal(), 12, 1)).percentile(75.0);
        assert!(
            openepc < acacia * 0.6,
            "openepc {openepc} vs acacia {acacia}"
        );
        assert!(acacia > 0.8 * ideal, "acacia {acacia} vs ideal {ideal}");
    }

    #[test]
    fn fig3g_background_explodes_latency() {
        let idle = fig3g_point(18, 0, 1);
        let sat = fig3g_point(18, 100_000_000, 1);
        assert!(idle < 0.05, "idle {idle}");
        assert!(sat > 0.4, "saturated {sat}");
    }
}
