//! The mobility figure: AR session continuity across X2 handovers.
//!
//! Not a figure of the original paper — §8 argues ACACIA handles user
//! mobility through standard handover procedures plus MRS-driven bearer
//! management, without quantifying it. This experiment runs the walk the
//! argument implies: a UE carries a live AR session from the
//! MEC-equipped small cell to a far cell and back, under three variants
//! (dedicated-bearer re-anchoring, default-bearer fallback, and the
//! conventional cloud baseline), and reports service-interruption time,
//! X2-forwarded vs lost packets, and the frame-latency distribution.

use crate::runner;
use crate::table::{fmt_secs, Table};
use acacia::mobility::{MobilityConfig, MobilityMode, MobilityScenario};
use acacia_simnet::stats::Series;

/// Mobility figure data: one session report per variant.
pub fn mobility_reports() -> Vec<acacia::mobility::MobilityReport> {
    let cells = MobilityMode::ALL
        .iter()
        .map(|&m| (m.name().to_string(), m))
        .collect();
    // Each worker builds and runs its own full simulation stack; only the
    // (Send) config crosses the thread boundary.
    runner::pmap("mobility", cells, |mode| {
        let r = MobilityScenario::build(MobilityConfig::figure(mode)).run();
        runner::report_events(r.events_processed);
        r
    })
}

/// Mobility: session continuity across handovers, per variant.
pub fn mobility() -> Table {
    let reports = mobility_reports();
    let mut t = Table::new(
        "Mobility — AR session across X2 handovers (MEC cell -> far cell -> back)",
        &[
            "variant",
            "frames",
            "handovers",
            "interrupt max",
            "x2 fwd",
            "probes lost",
            "retx",
            "bearer",
            "lat p50",
            "lat p90",
        ],
    );
    for r in &reports {
        let interrupt_max = r.interruptions_ms.iter().cloned().fold(0.0f64, f64::max);
        let lat = Series::from_iter(r.frames.iter().map(|f| f.total_s()));
        let bearer = match (r.dedicated_reanchored, r.dedicated_released) {
            (0, 0) => "default only".to_string(),
            (re, 0) => format!("reanchored x{re}"),
            (0, rel) => format!("released x{rel}"),
            (re, rel) => format!("reanchored x{re}, released x{rel}"),
        };
        t.row(vec![
            r.mode.name().to_string(),
            format!("{}/{}", r.frames.len(), r.frames_requested),
            r.handovers.to_string(),
            fmt_secs(interrupt_max / 1e3),
            r.x2_forwarded.to_string(),
            format!("{}/{}", r.probes.1, r.probes.0),
            r.retransmissions.to_string(),
            bearer,
            fmt_secs(lat.median()),
            fmt_secs(lat.percentile(90.0)),
        ]);
    }
    t.note("every variant must complete all frames: session continuity is the claim under test");
    t.note("re-anchoring keeps the dedicated bearer (and MEC latency) across cells; fallback");
    t.note("survives on the default bearer at core latency until the UE returns to MEC coverage");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobility_reports_complete_in_every_variant() {
        // Smoke scale: the figure-scale walk is exercised by `figures`.
        let reports: Vec<_> = MobilityMode::ALL
            .iter()
            .map(|&m| MobilityScenario::build(MobilityConfig::smoke(m)).run())
            .collect();
        for r in &reports {
            assert!(r.session_complete(), "{} incomplete", r.mode.name());
            assert_eq!(r.handovers, 2, "{}", r.mode.name());
        }
        // Only the re-anchor variant keeps the bearer on the move.
        assert_eq!(reports[0].dedicated_reanchored, 2);
        assert_eq!(reports[1].dedicated_released, 1);
        assert_eq!(reports[2].dedicated_reanchored, 0);
    }
}
