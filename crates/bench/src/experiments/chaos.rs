//! The chaos sweep: handover recovery under control-plane fault
//! injection.
//!
//! Not a figure of the original paper — its robustness argument (§8) is
//! qualitative. This experiment replays the mobility walk while a seeded
//! fault injector drops, duplicates and reorders control messages on
//! every S1AP and X2 link direction, at increasing drop rates, and audits
//! how each handover resolved: completed (possibly after guard-timer
//! retransmission), cancelled, RRC re-established after a lost Handover
//! Command, or released to the default bearer + core detour by the
//! path-switch fallback. The invariant under test at every rate: the
//! session still completes and **no UE wedges** — every UE ends in a
//! legal RRC state with zero handover procedures outstanding.
//!
//! The sweep honours the `figures --seed N` flag, so CI can run a seed
//! matrix; for a fixed seed the output is byte-identical across `--jobs`
//! worker counts.

use crate::runner;
use crate::table::{fmt_secs, Table};
use acacia::chaos::{ChaosConfig, ChaosReport, ChaosScenario};
use acacia_simnet::stats::Series;

/// Control-message drop rates swept by the figure (duplicates and
/// reorders ride along at half each rate). The 50% cell is deliberately
/// brutal — most handovers need the deeper rungs of the recovery ladder
/// to survive it.
pub const DROP_RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.20, 0.50];

/// The labelled sweep grid at a given master seed.
fn grid(seed: u64, smoke: bool) -> Vec<(String, ChaosConfig)> {
    DROP_RATES
        .iter()
        .map(|&rate| {
            let mut cfg = if smoke {
                ChaosConfig::smoke(rate)
            } else {
                ChaosConfig::figure(rate)
            };
            cfg.mobility.seed = seed;
            // A seed-derived fault stream family, decorrelated from the
            // simulation RNG by construction (separate ChaCha8 streams).
            cfg.fault_seed = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(7);
            (format!("drop={:.0}%", rate * 100.0), cfg)
        })
        .collect()
}

/// Chaos sweep data: one recovery audit per drop rate.
pub fn chaos_reports() -> Vec<ChaosReport> {
    runner::pmap("chaos", grid(crate::seed(), false), |cfg| {
        let r = ChaosScenario::build(cfg).run();
        runner::report_events(r.mobility.events_processed);
        r
    })
}

/// Chaos: handover recovery outcomes vs control-plane fault rate.
pub fn chaos() -> Table {
    let reports = chaos_reports();
    let mut t = Table::new(
        &format!(
            "Chaos — X2/S1AP fault injection over the mobility walk (seed {})",
            crate::seed()
        ),
        &[
            "drop rate",
            "frames",
            "completed",
            "retx",
            "cancelled",
            "reest",
            "fallback",
            "interrupt p50",
            "interrupt max",
            "injected d/d/r",
            "cong drops",
            "wedged",
        ],
    );
    for r in &reports {
        let gaps = Series::from_iter(r.mobility.interruptions_ms.iter().copied());
        let (p50, max) = if r.mobility.interruptions_ms.is_empty() {
            ("-".to_string(), "-".to_string())
        } else {
            let max_ms = r
                .mobility
                .interruptions_ms
                .iter()
                .cloned()
                .fold(0.0f64, f64::max);
            (fmt_secs(gaps.median() / 1e3), fmt_secs(max_ms / 1e3))
        };
        t.row(vec![
            format!("{:.0}%", r.drop_rate * 100.0),
            format!(
                "{}/{}",
                r.mobility.frames.len(),
                r.mobility.frames_requested
            ),
            r.completed.to_string(),
            format!("{}+{}", r.ho_retx, r.ps_retx),
            format!("{}/{}", r.cancelled, r.cancelled_in),
            r.reestablished.to_string(),
            r.fallback.to_string(),
            p50,
            max,
            format!(
                "{}/{}/{}",
                r.injected_drops, r.injected_duplicates, r.injected_reorders
            ),
            r.congestion_drops.to_string(),
            format!("{}+{}", r.wedged_ues, r.outstanding_procedures),
        ]);
    }
    t.note("recovery ladder: guard-timer retransmission (retx = X2 prep + path switch), handover");
    t.note("cancel, T304 -> RRC re-establishment (reest), and path-switch fallback to the default");
    t.note(
        "bearer + core detour; 'wedged' (UEs in an illegal end state + open procedures) must be 0",
    );
    t.note(
        "injected d/d/r = control packets dropped/duplicated/reordered by the seeded fault plans,",
    );
    t.note("attributed separately from organic congestion drops on the same links");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The assembled sweep must be byte-identical no matter how many
    /// workers raced over the grid (smoke scale; figure scale is
    /// compared across `--jobs` in CI).
    #[test]
    fn chaos_grid_is_byte_identical_across_worker_counts() {
        let render = |jobs: usize| {
            runner::set_jobs(Some(jobs));
            let reports = runner::pmap("chaos-smoke", grid(42, true), |cfg| {
                ChaosScenario::build(cfg).run()
            });
            runner::set_jobs(None);
            format!("{reports:?}")
        };
        let serial = render(1);
        assert_eq!(serial, render(4));
        // Every cell of the smoke sweep must end clean, rate 0 included.
        assert!(serial.contains("wedged_ues: 0"));
        assert!(!serial.contains("wedged_ues: 1"));
    }
}
