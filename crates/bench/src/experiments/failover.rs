//! The failover ladder experiment: crash schedules over the city and an
//! audit of where every session landed.
//!
//! Not a figure of the original paper — it exercises the robustness
//! ladder the paper's architecture implies but never measures: when a
//! MEC site (or a whole region, gateway included) dies mid-stream, the
//! MRS lease audit must evict it, streaming clients must re-resolve and
//! re-anchor (neighbor MEC over the default bearer, or the cloud
//! fallback), and — when the site comes back — the restored lease must
//! let later rechecks re-bind. Three crash shapes run over the smoke
//! city (8 MEC regions, 32 sessions), the restarting ones sweeping the
//! outage duration, and *each* configuration runs at `--shards`
//! {1, 2, 4, 8}: every deterministic column must be identical across a
//! configuration's four rows, so the table doubles as a live parity
//! check of the node-fault engine under sharding.
//!
//! Headline invariants, asserted per cell: zero wedged sessions, every
//! session in exactly one outcome bucket, the GW-C's dedicated-bearer
//! activation counter equal to the bearers actually present, and a
//! conserved cross-shard exchange. Wall-clock goes to stderr and
//! `BENCH_failover.json`; stdout stays byte-identical across `--jobs`
//! and `--shards`.

use crate::runner;
use crate::table::Table;
use acacia::failover::{FailoverConfig, FailoverMode, FailoverReport, FailoverScenario};
use acacia_simnet::time::Duration;

/// Shard counts swept per crash configuration.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The crash schedule matrix: mode × outage duration.
fn configs() -> Vec<(FailoverMode, Duration)> {
    vec![
        (FailoverMode::CrashStop, Duration::ZERO),
        (FailoverMode::CrashRestart, Duration::from_millis(500)),
        (FailoverMode::CrashRestart, Duration::from_secs(1)),
        (FailoverMode::CrashRestart, Duration::from_secs(2)),
        (FailoverMode::RegionOutage, Duration::from_secs(1)),
    ]
}

/// One executed cell: a crash configuration at one shard count.
pub struct FailoverCell {
    /// Crash shape.
    pub mode: FailoverMode,
    /// Outage duration (zero for crash-stop).
    pub outage: Duration,
    /// Shard count the engine ran with.
    pub shards: usize,
    /// The deterministic outcome.
    pub report: FailoverReport,
    /// Wall-clock seconds (non-deterministic; kept off stdout).
    pub wall_s: f64,
}

/// The deterministic fingerprint that must not vary with the shard
/// count.
fn fingerprint(r: &FailoverReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.city
            .ues
            .iter()
            .map(|u| (u.frames_done, u.handovers, u.retransmissions))
            .collect::<Vec<_>>(),
        r.outcomes,
        r.failovers,
        r.interruptions_s.clone(),
        r.node_restarts,
        r.mrs_evictions,
        r.mrs_restores,
        r.gwu_flush_released,
        r.city.events_processed,
        r.city.sim_elapsed,
    )
}

/// Run every crash configuration at every shard count. The shard knob is
/// process-wide, so shard counts run serially; within one shard count
/// the configurations fan out across `--jobs`. The knob in effect
/// before the sweep is restored afterwards.
fn sweep(seed: u64) -> Vec<FailoverCell> {
    let prev = acacia_simnet::default_shards();
    let mut cells = Vec::new();
    for &shards in &SHARD_COUNTS {
        acacia_simnet::set_default_shards(Some(shards));
        let jobs: Vec<(String, (FailoverMode, Duration))> = configs()
            .into_iter()
            .map(|(mode, outage)| {
                (
                    format!("{} outage={} shards={shards}", mode.label(), outage),
                    (mode, outage),
                )
            })
            .collect();
        let ran = runner::pmap("failover", jobs, move |(mode, outage)| {
            let mut cfg = FailoverConfig::smoke(mode, outage);
            cfg.fault_seed = seed;
            let t0 = std::time::Instant::now();
            let report = FailoverScenario::run(cfg);
            runner::report_events(report.city.events_processed);
            runner::report_shard_events(&report.city.events_by_shard);
            FailoverCell {
                mode,
                outage,
                shards,
                report,
                wall_s: t0.elapsed().as_secs_f64(),
            }
        });
        cells.extend(ran);
    }
    acacia_simnet::set_default_shards(Some(prev));
    cells
}

/// Failover sweep at the master seed (`figures --seed N` varies the
/// fault plan's probability draws; the schedule itself is fixed).
pub fn failover_reports() -> Vec<FailoverCell> {
    sweep(crate::seed())
}

/// Failover: crash schedules, outage sweep, outcome audit, shard parity.
pub fn failover() -> Table {
    let cells = failover_reports();
    let mut t = Table::new(
        "Failover — MEC/GW crash schedules over the city (8 regions, 32 sessions)",
        &[
            "mode",
            "outage",
            "shards",
            "frames",
            "failovers",
            "stayed",
            "neigh",
            "cloud",
            "rebind",
            "evict/rest",
            "restarts",
            "p95 gap",
            "wedged",
            "events",
        ],
    );
    // Shard parity: each configuration's deterministic outcome must be
    // identical at every shard count.
    for (mode, outage) in configs() {
        let group: Vec<&FailoverCell> = cells
            .iter()
            .filter(|c| c.mode == mode && c.outage == outage)
            .collect();
        assert_eq!(group.len(), SHARD_COUNTS.len());
        let base = fingerprint(&group[0].report);
        for c in &group[1..] {
            assert_eq!(
                fingerprint(&c.report),
                base,
                "{} outage={}: shards={} diverged from shards={}",
                mode.label(),
                outage,
                c.shards,
                group[0].shards
            );
        }
    }
    for c in &cells {
        let r = &c.report;
        assert_eq!(
            r.city.wedged(),
            0,
            "{} outage={} shards={}: wedged sessions",
            c.mode.label(),
            c.outage,
            c.shards
        );
        assert_eq!(r.city.protocol_wedged(), 0);
        assert!(
            r.conserved(),
            "{} outage={} shards={}: recovery counters not conserved",
            c.mode.label(),
            c.outage,
            c.shards
        );
        let frames_done: u64 = r.city.ues.iter().map(|u| u.frames_done).sum();
        t.row(vec![
            c.mode.label().to_string(),
            format!("{}", c.outage),
            c.shards.to_string(),
            format!(
                "{}/{}",
                frames_done,
                r.city.frames_requested * r.city.ue_count as u64
            ),
            r.failovers.to_string(),
            r.outcomes.stayed.to_string(),
            r.outcomes.neighbor_mec.to_string(),
            r.outcomes.cloud_fallback.to_string(),
            r.outcomes.restart_rebind.to_string(),
            format!("{}/{}", r.mrs_evictions, r.mrs_restores),
            r.node_restarts.to_string(),
            format!("{:.3}s", r.interruption_percentile(95.0)),
            r.city.wedged().to_string(),
            r.city.events_processed.to_string(),
        ]);
    }
    t.note("each crash configuration runs at --shards {1, 2, 4, 8}: its four rows must be");
    t.note("identical except the 'shards' column (live parity check of the fault engine);");
    t.note("'wedged' must be 0 everywhere and stayed+neigh+cloud+rebind must cover all 32");
    t.note("sessions; 'p95 gap' is the service interruption at each failover adoption");

    for c in &cells {
        eprintln!(
            "failover {} outage={} shards={}: {} events in {:.2}s wall",
            c.mode.label(),
            c.outage,
            c.shards,
            c.report.city.events_processed,
            c.wall_s
        );
    }
    let json = render_json(&cells);
    match std::fs::write("BENCH_failover.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_failover.json"),
        Err(e) => eprintln!("could not write BENCH_failover.json: {e}"),
    }
    t
}

/// Hand-rolled JSON (the bench crate deliberately has no serde): every
/// string value is a fixed mode label, so no escaping is needed.
fn render_json(cells: &[FailoverCell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"failover\",\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        let frames_done: u64 = r.city.ues.iter().map(|u| u.frames_done).sum();
        out.push_str(&format!(
            concat!(
                "    {{\"mode\": \"{}\", \"outage_ms\": {}, \"shards\": {}, ",
                "\"frames_done\": {}, \"frames_requested\": {}, \"failovers\": {}, ",
                "\"stayed\": {}, \"neighbor_mec\": {}, \"cloud_fallback\": {}, ",
                "\"restart_rebind\": {}, \"mrs_evictions\": {}, \"mrs_restores\": {}, ",
                "\"node_restarts\": {}, \"gwu_flush_released\": {}, ",
                "\"interruption_p50_s\": {:.3}, \"interruption_p95_s\": {:.3}, ",
                "\"interruption_max_s\": {:.3}, \"wedged\": {}, ",
                "\"events_processed\": {}, \"wall_s\": {:.3}}}{}\n"
            ),
            c.mode.label(),
            (c.outage.secs_f64() * 1000.0).round() as u64,
            c.shards,
            frames_done,
            r.city.frames_requested * r.city.ue_count as u64,
            r.failovers,
            r.outcomes.stayed,
            r.outcomes.neighbor_mec,
            r.outcomes.cloud_fallback,
            r.outcomes.restart_rebind,
            r.mrs_evictions,
            r.mrs_restores,
            r.node_restarts,
            r.gwu_flush_released,
            r.interruption_percentile(50.0),
            r.interruption_percentile(95.0),
            r.interruption_percentile(100.0),
            r.city.wedged(),
            r.city.events_processed,
            c.wall_s,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One crash-restart configuration swept across every shard count:
    /// identical deterministic outcome, zero wedged sessions, conserved
    /// recovery counters, well-formed JSON.
    #[test]
    fn crash_restart_sweep_is_shard_invariant() {
        let prev = acacia_simnet::default_shards();
        let mut cells = Vec::new();
        for &shards in &SHARD_COUNTS {
            acacia_simnet::set_default_shards(Some(shards));
            let mut cfg =
                FailoverConfig::smoke(FailoverMode::CrashRestart, Duration::from_secs(1));
            cfg.city.regions = 2;
            cfg.city.ues_per_region = 2;
            cfg.city.frame_count = 2;
            let report = FailoverScenario::run(cfg);
            cells.push(FailoverCell {
                mode: FailoverMode::CrashRestart,
                outage: Duration::from_secs(1),
                shards,
                report,
                wall_s: 0.0,
            });
        }
        acacia_simnet::set_default_shards(Some(prev));

        let base = fingerprint(&cells[0].report);
        for c in &cells[1..] {
            assert_eq!(
                fingerprint(&c.report),
                base,
                "shards={} diverged from shards=1",
                c.shards
            );
        }
        for c in &cells {
            assert_eq!(c.report.city.wedged(), 0);
            assert!(c.report.conserved(), "shards={}: {:?}", c.shards, c.report);
        }
        assert_eq!(cells[0].report.node_restarts, 1);
        assert_eq!(cells[0].report.mrs_restores, 1);

        let json = render_json(&cells);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"mode\"").count(), SHARD_COUNTS.len());
        assert!(json.contains("\"wedged\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
