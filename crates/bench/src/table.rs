//! Minimal aligned-column table printer for the figures harness.

/// A printable results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
    blocks: Vec<String>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Append a free-form note shown under the table.
    pub fn note(&mut self, note: &str) -> &mut Self {
        self.notes.push(note.to_string());
        self
    }

    /// Append a verbatim multi-line block (e.g. ASCII art) rendered
    /// between the rows and the notes.
    pub fn block(&mut self, text: &str) -> &mut Self {
        self.blocks.push(text.to_string());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for block in &self.blocks {
            out.push_str(block);
            if !block.ends_with('\n') {
                out.push('\n');
            }
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Format seconds adaptively (s / ms / µs).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Format bits/s adaptively (Gbps / Mbps / kbps).
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2}Gbps", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:.1}Mbps", bps / 1e6)
    } else {
        format!("{:.1}kbps", bps / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "longer"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("note: hello"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0421), "42.1ms");
        assert_eq!(fmt_secs(0.0000421), "42.1us");
        assert_eq!(fmt_bps(2.5e9), "2.50Gbps");
        assert_eq!(fmt_bps(12e6), "12.0Mbps");
        assert_eq!(fmt_bps(9_500.0), "9.5kbps");
    }
}
