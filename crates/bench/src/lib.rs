//! # acacia-bench — the figure/table regeneration harness
//!
//! Every table and figure of the ACACIA paper's evaluation maps to a
//! function in [`experiments`]; the `figures` binary exposes them as
//! subcommands:
//!
//! ```text
//! cargo run -p acacia-bench --release --bin figures -- all
//! cargo run -p acacia-bench --release --bin figures -- fig13
//! ```
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod runner;
pub mod table;

use std::sync::atomic::{AtomicU64, Ordering};
use table::Table;

/// Process-wide master seed for experiments that honour the `figures
/// --seed N` flag (currently the chaos sweep). Defaults to 42, the seed
/// baked into every fixed-seed experiment config.
static SEED: AtomicU64 = AtomicU64::new(42);

/// Set the master seed used by seed-aware experiments.
pub fn set_seed(seed: u64) {
    SEED.store(seed, Ordering::SeqCst);
}

/// The master seed in effect.
pub fn seed() -> u64 {
    SEED.load(Ordering::SeqCst)
}

/// All experiment ids, in paper order.
pub const ALL_IDS: [&str; 17] = [
    "fig3a",
    "fig3b",
    "fig3c",
    "fig3d",
    "fig3e",
    "fig3f",
    "fig3g",
    "fig3h",
    "sec4-ctrl",
    "fig6",
    "fig8",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "sec73-jpeg",
    "fig11a",
];

/// Extended ids that take noticeably longer (included in `all`).
pub const SLOW_IDS: [&str; 7] = [
    "fig11b",
    "fig12",
    "fig13",
    "ablation-radius",
    "mobility",
    "chaos",
    "loaded",
];

/// Extra experiments runnable by id but excluded from `all` (they
/// measure the harness, not the paper: their stderr/JSON output is
/// wall-clock dependent).
pub const EXTRA_IDS: [&str; 3] = ["scale", "city", "failover"];

/// Run one experiment by id.
pub fn run(id: &str) -> Option<Table> {
    use experiments::*;
    Some(match id {
        "fig3a" => compute::fig3a(),
        "fig3b" => compute::fig3b(),
        "fig3c" => network::fig3c(),
        "fig3d" => network::fig3d(),
        "fig3e" => compute::fig3e(),
        "fig3f" => compute::fig3f(),
        "fig3g" => network::fig3g(),
        "fig3h" => compute::fig3h(),
        "sec4-ctrl" => network::sec4_ctrl(),
        "fig6" => localization::fig6(),
        "fig8" => network::fig8(),
        "fig9a" => localization::fig9a(),
        "fig9b" => localization::fig9b(),
        "fig10a" => network::fig10a(),
        "fig10b" => network::fig10b(),
        "sec73-jpeg" => compute::sec73_jpeg(),
        "fig11a" => application::fig11a(),
        "fig11b" => application::fig11b(),
        "fig12" => application::fig12(),
        "fig13" => application::fig13(),
        "ablation-radius" => application::ablation_radius(),
        "mobility" => mobility::mobility(),
        "chaos" => chaos::chaos(),
        "scale" => scale::scale(),
        "city" => city::city(),
        "failover" => failover::failover(),
        "loaded" => loaded::loaded(),
        _ => return None,
    })
}
