//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures <id>...          # one or more of the experiment ids
//! figures all              # everything, in paper order
//! figures all --jobs 4     # fan grid cells out across 4 worker threads
//! figures list             # show available ids
//! ```
//!
//! `--jobs N` (or `--jobs=N`) sets the worker count for the parallel
//! experiment runner; the default is the machine's available
//! parallelism and `--jobs 1` is the serial path. Output on stdout is
//! byte-identical for every worker count — the per-cell timing report
//! goes to stderr.
//!
//! `--seed N` (or `--seed=N`) sets the master seed for seed-aware
//! experiments (the chaos sweep); the default is 42.
//!
//! `--shards N` (or `--shards=N`) sets the engine's shard count: every
//! simulation partitions its topology into N region shards running on N
//! threads with conservative-lookahead synchronization. Stdout is
//! byte-identical for every shard count — `--shards 1` is the serial
//! engine, and any `--shards N` run must match it exactly. The `city`
//! experiment sweeps shard counts itself and restores this flag's value
//! afterwards.

use acacia_bench::{run, runner, set_seed, ALL_IDS, EXTRA_IDS, SLOW_IDS};

fn main() {
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "--jobs" {
            let n = raw.next().and_then(|v| v.parse::<usize>().ok());
            match n {
                Some(n) if n >= 1 => runner::set_jobs(Some(n)),
                _ => die("--jobs expects a positive integer"),
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => runner::set_jobs(Some(n)),
                _ => die("--jobs expects a positive integer"),
            }
        } else if a == "--seed" {
            match raw.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => set_seed(n),
                None => die("--seed expects an unsigned integer"),
            }
        } else if let Some(v) = a.strip_prefix("--seed=") {
            match v.parse::<u64>() {
                Ok(n) => set_seed(n),
                Err(_) => die("--seed expects an unsigned integer"),
            }
        } else if a == "--shards" {
            match raw.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => acacia_simnet::set_default_shards(Some(n)),
                _ => die("--shards expects a positive integer"),
            }
        } else if let Some(v) = a.strip_prefix("--shards=") {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => acacia_simnet::set_default_shards(Some(n)),
                _ => die("--shards expects a positive integer"),
            }
        } else {
            args.push(a);
        }
    }
    if args.is_empty() || args[0] == "list" {
        println!("available experiments:");
        for id in ALL_IDS.iter().chain(SLOW_IDS.iter()) {
            println!("  {id}");
        }
        for id in EXTRA_IDS.iter() {
            println!("  {id}  (benchmark; not part of 'all')");
        }
        println!("  all  (runs everything, in paper order)");
        return;
    }
    let all = args.iter().any(|a| a == "all");
    let ids: Vec<&str> = if all {
        ALL_IDS.iter().chain(SLOW_IDS.iter()).copied().collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for id in ids {
        match run(id) {
            Some(table) => table.print(),
            None => {
                eprintln!("unknown experiment id: {id}");
                eprintln!("valid experiment ids:");
                for known in ALL_IDS
                    .iter()
                    .chain(SLOW_IDS.iter())
                    .chain(EXTRA_IDS.iter())
                {
                    eprintln!("  {known}");
                }
                eprintln!("  all  (runs everything, in paper order)");
                std::process::exit(2);
            }
        }
    }
    // Stderr, so stdout stays byte-identical across --jobs values.
    let timings = runner::drain_timings();
    if !timings.is_empty() {
        eprintln!("{}", runner::timing_report(&timings).render());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
