//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures <id>...   # one or more of the experiment ids
//! figures all       # everything, in paper order
//! figures list      # show available ids
//! ```

use acacia_bench::{run, ALL_IDS, SLOW_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" {
        println!("available experiments:");
        for id in ALL_IDS.iter().chain(SLOW_IDS.iter()) {
            println!("  {id}");
        }
        println!("  all  (runs everything, in paper order)");
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_IDS.iter().chain(SLOW_IDS.iter()).copied().collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for id in ids {
        match run(id) {
            Some(table) => table.print(),
            None => {
                eprintln!("unknown experiment id: {id} (try `figures list`)");
                std::process::exit(2);
            }
        }
    }
}
