//! Parallel deterministic experiment runner.
//!
//! Every heavy experiment in [`crate::experiments`] is a *grid* of
//! independent cells — one seeded, single-threaded simulation per
//! `(experiment id, cell label, config)` triple. This module fans those
//! cells out across a scoped worker pool and merges the results back in
//! **index order**, so the assembled tables are byte-identical to the
//! serial run no matter how many workers raced over the grid:
//!
//! * parallel **across** cells, strictly serial (and seeded) **within**
//!   a cell — no simulation ever shares state with another thread;
//! * results land in a slot per cell and are read back in submission
//!   order, so floating-point accumulation order never changes;
//! * wall-clock timings are collected per cell for the progress report
//!   but are kept out of the experiment output itself.
//!
//! The worker count is a process-wide knob ([`set_jobs`]) so the
//! `figures` binary's `--jobs N` flag reaches every experiment without
//! threading a handle through each `figXX()` signature. `--jobs 1` takes
//! a dedicated serial path that is exactly the pre-runner `for` loop.
//! The pool uses only `std::thread::scope` — no new dependencies.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker count. 0 = auto (available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Wall-clock timings of every cell run since the last [`drain_timings`].
static TIMINGS: Mutex<Vec<CellTiming>> = Mutex::new(Vec::new());

/// Wall-clock record of one executed grid cell.
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// Experiment the cell belongs to (e.g. `"fig10b"`).
    pub experiment: String,
    /// Cell label within the grid (e.g. `"bg=40 ACACIA"`).
    pub cell: String,
    /// Wall-clock seconds the cell took.
    pub wall_s: f64,
    /// Engine events the cell's simulation dispatched (0 when the cell
    /// did not call [`report_events`]).
    pub events: u64,
    /// Per-shard breakdown of `events` for cells that ran a sharded
    /// engine and called [`report_shard_events`] (empty otherwise).
    pub shard_events: Vec<u64>,
}

thread_local! {
    /// Events reported by the cell currently running on this worker.
    static CELL_EVENTS: Cell<u64> = const { Cell::new(0) };
    /// Per-shard events reported by the cell currently running here.
    static CELL_SHARD_EVENTS: std::cell::RefCell<Vec<u64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Report how many engine events the current cell's simulation
/// dispatched. Call from inside the closure passed to [`pmap`]; the
/// runner attaches the count to that cell's timing record so the stderr
/// report can show throughput (events/sec) per experiment.
pub fn report_events(events: u64) {
    CELL_EVENTS.with(|c| c.set(c.get().saturating_add(events)));
}

/// Report the per-shard split of the current cell's events (the
/// simulator's `events_by_shard()`). Complements [`report_events`]; the
/// timing report prints the split so per-shard occupancy — the scaling
/// claim — is visible without re-running anything.
pub fn report_shard_events(by_shard: &[u64]) {
    CELL_SHARD_EVENTS.with(|c| {
        let mut v = c.borrow_mut();
        if v.len() < by_shard.len() {
            v.resize(by_shard.len(), 0);
        }
        for (slot, &n) in v.iter_mut().zip(by_shard) {
            *slot = slot.saturating_add(n);
        }
    });
}

/// Run one cell: time it, capture any event count it reports, record.
fn run_cell<I, T>(experiment: &str, label: String, cell: I, f: impl Fn(I) -> T) -> T {
    CELL_EVENTS.with(|c| c.set(0));
    CELL_SHARD_EVENTS.with(|c| c.borrow_mut().clear());
    let t0 = std::time::Instant::now();
    let result = f(cell);
    let events = CELL_EVENTS.with(Cell::take);
    let shard_events = CELL_SHARD_EVENTS.with(|c| std::mem::take(&mut *c.borrow_mut()));
    record(
        experiment,
        label,
        t0.elapsed().as_secs_f64(),
        events,
        shard_events,
    );
    result
}

/// Set the worker count used by [`pmap`]. `None` (or `Some(0)`) restores
/// the default: one worker per available hardware thread.
pub fn set_jobs(jobs: Option<usize>) {
    JOBS.store(jobs.unwrap_or(0), Ordering::SeqCst);
}

/// The effective worker count: the value set via [`set_jobs`], or the
/// machine's available parallelism when unset.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Run `f` over every cell of a labelled grid, in parallel across up to
/// [`jobs`] workers, and return the results **in cell order**.
///
/// Each cell must be self-contained: `f` receives the cell's config by
/// value and builds whatever simulation it needs inside the worker
/// thread. With `jobs() == 1` the grid runs in a plain `for` loop — the
/// exact serial path experiments used before the runner existed.
pub fn pmap<I, T, F>(experiment: &str, cells: Vec<(String, I)>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let workers = jobs().min(cells.len().max(1));
    if workers <= 1 {
        let mut out = Vec::with_capacity(cells.len());
        for (label, cell) in cells {
            out.push(run_cell(experiment, label, cell, &f));
        }
        return out;
    }

    // Index-claiming pool: each worker grabs the next unclaimed cell,
    // runs it, and stores the result in that cell's dedicated slot.
    // Reading the slots back in index order makes the merge independent
    // of completion order.
    let n = cells.len();
    let cells: Vec<Mutex<Option<(String, I)>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (label, cell) = cells[i]
                    .lock()
                    .expect("cell lock")
                    .take()
                    .expect("cell claimed once");
                *slots[i].lock().expect("slot lock") = Some(run_cell(experiment, label, cell, &f));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every cell completed")
        })
        .collect()
}

/// Convenience for unlabelled grids: cells are labelled by index.
pub fn pmap_indexed<I, T, F>(experiment: &str, cells: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let cells = cells
        .into_iter()
        .enumerate()
        .map(|(i, c)| (format!("#{i}"), c))
        .collect();
    pmap(experiment, cells, f)
}

fn record(experiment: &str, cell: String, wall_s: f64, events: u64, shard_events: Vec<u64>) {
    TIMINGS.lock().expect("timings lock").push(CellTiming {
        experiment: experiment.to_string(),
        cell,
        wall_s,
        events,
        shard_events,
    });
}

/// Drain and return every cell timing recorded since the last call.
pub fn drain_timings() -> Vec<CellTiming> {
    std::mem::take(&mut *TIMINGS.lock().expect("timings lock"))
}

/// Render the drained timings as a per-experiment report: cell count,
/// total cell seconds, engine events dispatched, throughput, and the
/// slowest cell (the lower bound on that experiment's parallel
/// wall-clock). Experiments whose cells never call [`report_events`]
/// show `-` in the event columns.
pub fn timing_report(timings: &[CellTiming]) -> crate::table::Table {
    let mut t = crate::table::Table::new(
        &format!("Cell timing report ({} workers)", jobs()),
        &[
            "experiment",
            "cells",
            "cell time (s)",
            "events",
            "events/s",
            "slowest cell",
            "(s)",
        ],
    );
    let mut order: Vec<&str> = Vec::new();
    for c in timings {
        if !order.contains(&c.experiment.as_str()) {
            order.push(&c.experiment);
        }
    }
    let (mut grand_total, mut grand_events) = (0.0, 0u64);
    for exp in order {
        let cells: Vec<&CellTiming> = timings.iter().filter(|c| c.experiment == exp).collect();
        let total: f64 = cells.iter().map(|c| c.wall_s).sum();
        let events: u64 = cells.iter().map(|c| c.events).sum();
        grand_total += total;
        grand_events += events;
        let (ev, ev_s) = if events == 0 {
            ("-".to_string(), "-".to_string())
        } else {
            (events.to_string(), format!("{:.0}", events as f64 / total))
        };
        let slowest = cells
            .iter()
            .max_by(|a, b| a.wall_s.partial_cmp(&b.wall_s).expect("finite timing"))
            .expect("at least one cell");
        t.row(vec![
            exp.to_string(),
            cells.len().to_string(),
            format!("{total:.2}"),
            ev,
            ev_s,
            slowest.cell.clone(),
            format!("{:.2}", slowest.wall_s),
        ]);
    }
    let throughput = if grand_events == 0 {
        String::new()
    } else {
        format!(
            "; {grand_events} events dispatched ({:.0} events/s of cell time)",
            grand_events as f64 / grand_total
        )
    };
    t.note(&format!(
        "whole run: total cell time {grand_total:.2}s{throughput}; wall-clock is bounded below by each experiment's slowest cell"
    ));
    // Per-shard splits for cells that ran a sharded engine, so occupancy
    // balance (the scaling claim) is readable straight off the report.
    for c in timings.iter().filter(|c| c.shard_events.len() > 1) {
        let split: Vec<String> = c.shard_events.iter().map(|n| n.to_string()).collect();
        let max = c.shard_events.iter().copied().max().unwrap_or(0);
        let min = c.shard_events.iter().copied().min().unwrap_or(0).max(1);
        t.note(&format!(
            "{} {}: per-shard events [{}], imbalance {:.2}x",
            c.experiment,
            c.cell,
            split.join(", "),
            max as f64 / min as f64
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmap_preserves_order() {
        set_jobs(Some(4));
        let cells: Vec<(String, u64)> = (0..64u64).map(|i| (format!("c{i}"), i)).collect();
        let out = pmap("test", cells, |i| i * i);
        assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
        set_jobs(None);
    }

    #[test]
    fn serial_path_matches_parallel() {
        let cells =
            |n: u64| -> Vec<(String, u64)> { (0..n).map(|i| (format!("c{i}"), i)).collect() };
        set_jobs(Some(1));
        let serial = pmap("test", cells(33), |i| i.wrapping_mul(0x9e37_79b9));
        set_jobs(Some(8));
        let parallel = pmap("test", cells(33), |i| i.wrapping_mul(0x9e37_79b9));
        assert_eq!(serial, parallel);
        set_jobs(None);
    }

    #[test]
    fn timings_are_recorded_and_drained() {
        set_jobs(Some(2));
        let _ = pmap_indexed("timed", vec![1u8, 2, 3], |x| x);
        // Other tests share the global buffer; only count our experiment.
        let timings: Vec<CellTiming> = drain_timings()
            .into_iter()
            .filter(|c| c.experiment == "timed")
            .collect();
        set_jobs(None);
        assert_eq!(timings.len(), 3);
        let report = timing_report(&timings);
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn shard_splits_ride_with_their_cell_and_reach_the_report() {
        set_jobs(Some(1));
        let _ = pmap("shardrep", vec![("shards=2".to_string(), ())], |()| {
            report_events(30);
            report_shard_events(&[10, 20]);
        });
        let timings: Vec<CellTiming> = drain_timings()
            .into_iter()
            .filter(|c| c.experiment == "shardrep")
            .collect();
        set_jobs(None);
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].events, 30);
        assert_eq!(timings[0].shard_events, vec![10, 20]);
        let rendered = timing_report(&timings).render();
        assert!(rendered.contains("per-shard events [10, 20]"), "{rendered}");
        assert!(rendered.contains("imbalance 2.00x"), "{rendered}");
        assert!(rendered.contains("whole run"), "{rendered}");
    }

    #[test]
    fn events_ride_with_their_cell() {
        set_jobs(Some(2));
        let cells = vec![("a".to_string(), 10u64), ("b".to_string(), 20)];
        let _ = pmap("evt", cells, |n| {
            report_events(n);
            n
        });
        let mut by_cell: Vec<(String, u64)> = drain_timings()
            .into_iter()
            .filter(|c| c.experiment == "evt")
            .map(|c| (c.cell, c.events))
            .collect();
        set_jobs(None);
        by_cell.sort();
        assert_eq!(by_cell, vec![("a".to_string(), 10), ("b".to_string(), 20)]);
    }
}
