//! Offline vendored property-testing harness.
//!
//! Implements the subset of the `proptest` 1.x API this workspace uses:
//! [`Strategy`]/[`BoxedStrategy`], `any::<T>()`, range strategies,
//! string-pattern strategies (a small regex subset), tuple strategies,
//! `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::{select, subsequence}`, and the `proptest!`/
//! `prop_oneof!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberate for a hermetic build:
//! * no shrinking — a failing case panics with its inputs via the
//!   standard assertion message;
//! * cases are generated from a deterministic per-test ChaCha8 stream
//!   (seeded from the test name), so failures reproduce exactly;
//! * `PROPTEST_CASES` still controls the number of cases (default 256).

#![forbid(unsafe_code)]

use rand_chacha::rand_core::SeedableRng as _;

/// Deterministic RNG handed to strategies.
pub struct TestRng {
    inner: rand_chacha::ChaCha8Rng,
}

impl TestRng {
    /// RNG for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: rand_chacha::ChaCha8Rng::seed_from_u64(
                h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// A value generator.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased, cheaply-cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng as _;
            let idx = rng.gen_range(0..self.0.len());
            self.0[idx].generate(rng)
        }
    }

    impl<T: Copy + rand::SampleUniform + 'static> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    impl<T: Copy + rand::SampleUniform + 'static> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    /// String strategy from a pattern: a regex subset supporting literal
    /// characters, character classes `[a-z0-9-]` (ranges + literals) and
    /// quantifiers `{n}`, `{n,m}`, `?`, `*`, `+` (the unbounded ones
    /// capped at 8 repeats).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    enum Atom {
        Lit(char),
        Class(Vec<(char, char)>),
    }

    fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated character class in {pat:?}");
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Atom::Lit(c)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        if let Some((a, b)) = body.split_once(',') {
                            (a.trim().parse().unwrap(), b.trim().parse().unwrap())
                        } else {
                            let n: usize = body.trim().parse().unwrap();
                            (n, n)
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            atoms.push((atom, min, max));
        }
        atoms
    }

    fn generate_pattern(pat: &str, rng: &mut TestRng) -> String {
        use rand::Rng as _;
        let mut out = String::new();
        for (atom, min, max) in parse_pattern(pat) {
            let n = rng.gen_range(min..=max);
            for _ in 0..n {
                match &atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u32 = ranges
                            .iter()
                            .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                            .sum();
                        let mut pick = rng.gen_range(0..total);
                        for &(lo, hi) in ranges {
                            let span = hi as u32 - lo as u32 + 1;
                            if pick < span {
                                out.push(char::from_u32(lo as u32 + pick).unwrap());
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
        out
    }

    macro_rules! tuple_strategy {
        ($(($($S:ident : $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    }
}

pub use strategy::{BoxedStrategy, Strategy};

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized + 'static {
    /// Build the canonical strategy.
    fn arbitrary() -> BoxedStrategy<Self>;
}

macro_rules! arbitrary_via_u32 {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary() -> BoxedStrategy<Self> {
                struct S;
                impl Strategy for S {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        use rand::RngCore as _;
                        rng.next_u32() as $ty
                    }
                }
                S.boxed()
            }
        }
    )*};
}
arbitrary_via_u32!(u8, u16, u32, i8, i16, i32);

macro_rules! arbitrary_via_u64 {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary() -> BoxedStrategy<Self> {
                struct S;
                impl Strategy for S {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        use rand::RngCore as _;
                        rng.next_u64() as $ty
                    }
                }
                S.boxed()
            }
        }
    )*};
}
arbitrary_via_u64!(u64, usize, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<Self> {
        struct S;
        impl Strategy for S {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                use rand::Rng as _;
                rng.gen()
            }
        }
        S.boxed()
    }
}

macro_rules! arbitrary_float {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary() -> BoxedStrategy<Self> {
                struct S;
                impl Strategy for S {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        use rand::Rng as _;
                        // Finite values spanning a wide dynamic range.
                        let mag: $ty = rng.gen();
                        let exp = rng.gen_range(-60i32..60);
                        mag * (2.0 as $ty).powi(exp)
                    }
                }
                S.boxed()
            }
        }
    )*};
}
arbitrary_float!(f32, f64);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A size specification for collection strategies.
    pub trait SizeRange {
        /// Sample a size.
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option<T>`: `None` half the time.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            use rand::Rng as _;
            if rng.gen::<bool>() {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some(inner)` or `None`, equally likely.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Sampling strategies over concrete collections.
pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy picking one element of a vector.
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng as _;
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// Pick one element uniformly.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty collection");
        Select(items)
    }

    /// Strategy picking an order-preserving subsequence with a size in
    /// the given inclusive range.
    pub struct Subsequence<T> {
        items: Vec<T>,
        size: std::ops::RangeInclusive<usize>,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            use rand::Rng as _;
            let k = rng.gen_range(self.size.clone());
            // Reservoir-free selection: choose k distinct indices, keep
            // original order.
            let mut idx: Vec<usize> = (0..self.items.len()).collect();
            for i in 0..k {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            let mut chosen = idx[..k].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }

    /// Order-preserving subsequence of `items` with `size` elements.
    pub fn subsequence<T: Clone>(
        items: Vec<T>,
        size: std::ops::RangeInclusive<usize>,
    ) -> Subsequence<T> {
        assert!(*size.end() <= items.len(), "subsequence size exceeds items");
        Subsequence { items, size }
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 256).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Run `body` for each case with a per-case deterministic RNG.
pub fn run_proptest(name: &str, mut body: impl FnMut(&mut TestRng)) {
    for case in 0..cases() {
        let mut rng = TestRng::for_case(name, case);
        body(&mut rng);
    }
}

/// Define property tests. Each function body runs once per generated
/// case; `prop_assert*` failures panic with the offending inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_obeys_grammar() {
        let strat = "[a-z][a-z0-9-]{0,18}";
        for case in 0..200 {
            let mut rng = crate::TestRng::for_case("pattern", case);
            let s = Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty() && s.len() <= 19, "{s:?}");
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
            assert!(
                chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let items = vec![0usize, 1, 2, 3, 4, 5, 6];
        let strat = crate::sample::subsequence(items, 2..=7);
        for case in 0..100 {
            let mut rng = crate::TestRng::for_case("subseq", case);
            let got = Strategy::generate(&strat, &mut rng);
            assert!(got.len() >= 2 && got.len() <= 7);
            assert!(got.windows(2).all(|w| w[0] < w[1]), "{got:?}");
        }
    }

    proptest! {
        /// The proptest! macro itself works end to end.
        #[test]
        fn macro_smoke(x in 0u32..100, name in "[a-c]{1,3}", v in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 100);
            prop_assert!((1..=3).contains(&name.len()));
            prop_assert!(v.len() < 4);
        }
    }
}
