//! Offline vendored subset of the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and [`BufMut`] with the API surface
//! this workspace uses. `Bytes` is a cheaply-cloneable immutable byte
//! buffer; zero-copy slicing is implemented with an `Arc<[u8]>` plus a
//! window, which matches the upstream semantics for everything the
//! simulator does (clone, slice, deref, compare, hash).

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Borrow a `'static` slice (copied here; semantics are identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Self { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write access to a byte buffer (big-endian integer puts, like upstream).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_windows_share_data() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn put_is_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x0405_0607);
        m.put_u64(0x08090a0b_0c0d0e0f);
        let b = m.freeze();
        assert_eq!(
            &b[..],
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f]
        );
    }
}
