//! Offline vendored ChaCha RNG, **bit-compatible** with `rand_chacha` 0.3.
//!
//! All seeded experiment streams in this workspace come from
//! [`ChaCha8Rng`]; the recorded tables in `figures_output.txt` and the
//! bands in `EXPERIMENTS.md` depend on the exact output stream, so this
//! reimplementation follows `rand_chacha` 0.3 precisely:
//!
//! * the ChaCha block function with a 64-bit little-endian block counter
//!   at state words 12–13 and a zero stream (words 14–15),
//! * blocks are produced **four at a time** into a 64-word buffer
//!   (mirroring the upstream SIMD-oriented backend), and
//! * reads go through `rand_core`'s `BlockRng` index semantics,
//!   including the word-straddling `next_u64` case at the end of a
//!   buffer.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Re-export so `use rand_chacha::rand_core::SeedableRng` keeps working.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const BLOCK_WORDS: usize = 16;
/// Blocks generated per refill, matching `rand_chacha`'s 4-block backend.
const BLOCKS_PER_REFILL: u64 = 4;
const BUFFER_WORDS: usize = BLOCK_WORDS * BLOCKS_PER_REFILL as usize;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha core with a compile-time round count (8/12/20).
#[derive(Clone, Debug)]
struct ChaChaCore<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; BUFFER_WORDS],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> ChaChaCore<DOUBLE_ROUNDS> {
    fn new(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buffer: [0; BUFFER_WORDS],
            // Start exhausted so the first read triggers a refill, like
            // `BlockRng::new`.
            index: BUFFER_WORDS,
        }
    }

    fn block(&self, counter: u64, out: &mut [u32]) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        // Words 14..16 (the stream/nonce) stay zero.
        let mut working = state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (o, (w, s)) in out.iter_mut().zip(working.iter().zip(state.iter())) {
            *o = w.wrapping_add(*s);
        }
    }

    fn refill(&mut self) {
        for i in 0..BLOCKS_PER_REFILL as usize {
            let (lo, hi) = (i * BLOCK_WORDS, (i + 1) * BLOCK_WORDS);
            let mut out = [0u32; BLOCK_WORDS];
            self.block(self.counter.wrapping_add(i as u64), &mut out);
            self.buffer[lo..hi].copy_from_slice(&out);
        }
        self.counter = self.counter.wrapping_add(BLOCKS_PER_REFILL);
        self.index = 0;
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // `BlockRng::next_u64` semantics, including the straddle case at
        // the last buffered word.
        let index = self.index;
        if index < BUFFER_WORDS - 1 {
            self.index += 2;
            (u64::from(self.buffer[index + 1]) << 32) | u64::from(self.buffer[index])
        } else if index >= BUFFER_WORDS {
            self.refill();
            self.index = 2;
            (u64::from(self.buffer[1]) << 32) | u64::from(self.buffer[0])
        } else {
            let x = u64::from(self.buffer[BUFFER_WORDS - 1]);
            self.refill();
            self.index = 1;
            (u64::from(self.buffer[0]) << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // `fill_via_u32_chunks`: consume whole little-endian words, the
        // final word possibly partially.
        let mut written = 0;
        while written < dest.len() {
            if self.index >= BUFFER_WORDS {
                self.refill();
            }
            let word = self.buffer[self.index].to_le_bytes();
            self.index += 1;
            let n = (dest.len() - written).min(4);
            dest[written..written + n].copy_from_slice(&word[..n]);
            written += n;
        }
    }
}

macro_rules! chacha_rng {
    ($name:ident, $double_rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name(ChaChaCore<$double_rounds>);

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Self(ChaChaCore::new(seed))
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                self.0.fill_bytes(dest)
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 4, "ChaCha with 8 rounds (the workspace default RNG).");
chacha_rng!(ChaCha12Rng, 6, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 10, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.3.2 test vector, adapted: with the RFC key/nonce the
    /// ChaCha20 block function must match. Our generator fixes the nonce
    /// to zero, so instead verify the core invariants we rely on.
    #[test]
    fn chacha20_zero_key_known_answer() {
        // Independent reference value for ChaCha20, key=0, counter=0,
        // nonce=0 (widely published: first keystream word ade0b876).
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0xade0_b876);
    }

    #[test]
    fn u64_straddle_matches_word_stream() {
        // Drain 63 words via next_u32, then a next_u64 must straddle the
        // refill boundary: low half = old word 63, high half = new word 0.
        let mut a = ChaCha8Rng::from_seed([7u8; 32]);
        let mut b = ChaCha8Rng::from_seed([7u8; 32]);
        let mut words = Vec::new();
        for _ in 0..130 {
            words.push(a.next_u32());
        }
        for _ in 0..63 {
            b.next_u32();
        }
        let v = b.next_u64();
        assert_eq!(v as u32, words[63]);
        assert_eq!((v >> 32) as u32, words[64]);
    }

    #[test]
    fn seed_from_u64_is_stable() {
        // Lock in the PCG32 seed expansion + ChaCha8 stream so future
        // refactors can't silently shift every experiment.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(42);
        let second: Vec<u32> = (0..4).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn fill_bytes_is_le_words() {
        let mut a = ChaCha8Rng::from_seed([1u8; 32]);
        let mut b = ChaCha8Rng::from_seed([1u8; 32]);
        let mut buf = [0u8; 9];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[0..4], &w0);
        assert_eq!(&buf[4..8], &w1);
        assert_eq!(buf[8], w2[0]);
    }
}
