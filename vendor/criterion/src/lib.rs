//! Offline vendored micro-benchmark harness.
//!
//! Implements the `criterion` 0.5 API surface used by this workspace's
//! benches (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `sample_size`, `throughput`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`). Instead of criterion's statistical analysis it
//! measures a configurable number of timed samples and reports
//! median/min/max per benchmark — enough to compare hot paths locally
//! without any external dependencies.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI arguments, for `criterion_main!` parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// Throughput annotation (accepted; reported as-is).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Record a throughput annotation (informational).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.name);
        self
    }

    /// Benchmark a closure against a fixed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.name);
        self
    }

    /// Finish the group (reports are emitted eagerly; kept for parity).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration calibration: aim for samples
        // of at least ~200µs so the clock resolution doesn't dominate.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{group}/{id}: median {median:?} (min {min:?}, max {max:?}, {n} samples)",
            n = sorted.len()
        );
    }
}

/// Declare a benchmark group: `criterion_group!(benches, fn_a, fn_b);`
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        g.finish();
    }
}
