//! Offline vendored subset of `serde`.
//!
//! The real `serde` cannot be fetched in this hermetic build environment,
//! so this crate provides the small surface the workspace uses: the
//! [`Serialize`]/[`Deserialize`] traits, a JSON-shaped [`Value`] data
//! model they convert through, and re-exported derive macros (from the
//! sibling `serde_derive` vendored proc-macro).
//!
//! The simplification relative to upstream: instead of the
//! visitor-based zero-copy architecture, serialization goes
//! `T -> Value -> bytes` and deserialization `bytes -> Value -> T`.
//! The *wire format* produced by `serde_json` on top of this model is
//! byte-identical to upstream for the types in this workspace
//! (struct-definition field order is preserved, floats print via the
//! shortest round-trip representation, `Option` fields honour
//! `skip_serializing_if`/`default`, enums are externally tagged).

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::net::Ipv4Addr;

/// A JSON-shaped value: the intermediate data model between Rust types
/// and encoded bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (always < 0 when produced by the parser).
    I64(i64),
    /// Non-negative integer up to 64 bits.
    U64(u64),
    /// Large non-negative integer (e.g. `u128` service codes).
    U128(u128),
    /// 32-bit float, kept separate so it prints with `f32` shortest form.
    F32(f32),
    /// 64-bit float.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion order preserved (struct definition order).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object fields if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow the array elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::U128(_) => "integer",
            Value::F32(_) | Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Find a field in an object by key (first match, like JSON objects).
pub fn find_field<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from a message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// Type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError::custom(format!("expected {what}, got {}", got.kind()))
    }

    /// Missing-field error.
    pub fn missing_field(field: &str) -> DeError {
        DeError::custom(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can convert itself into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent from the input. `Option`
    /// overrides this to yield `None` (matching upstream serde).
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! serialize_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::U128(*self)
    }
}

/// Read any integer-shaped `Value` as `u128` (if non-negative).
fn int_as_u128(v: &Value) -> Option<u128> {
    match *v {
        Value::U64(n) => Some(n as u128),
        Value::U128(n) => Some(n),
        Value::I64(n) if n >= 0 => Some(n as u128),
        _ => None,
    }
}

/// Read any integer-shaped `Value` as `i128`.
fn int_as_i128(v: &Value) -> Option<i128> {
    match *v {
        Value::U64(n) => Some(n as i128),
        Value::U128(n) => i128::try_from(n).ok(),
        Value::I64(n) => Some(n as i128),
        _ => None,
    }
}

macro_rules! deserialize_uint {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = int_as_u128(v).ok_or_else(|| DeError::expected(stringify!($ty), v))?;
                <$ty>::try_from(n).map_err(|_| DeError::custom(
                    format!("integer {n} out of range for {}", stringify!($ty)),
                ))
            }
        }
    )*};
}
deserialize_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! deserialize_int {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = int_as_i128(v).ok_or_else(|| DeError::expected(stringify!($ty), v))?;
                <$ty>::try_from(n).map_err(|_| DeError::custom(
                    format!("integer {n} out of range for {}", stringify!($ty)),
                ))
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F32(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::F32(f) => Ok(f as f64),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::U128(n) => Ok(n as f64),
            _ => Err(DeError::expected("f64", v)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", v)),
        }
    }
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        // Upstream serde serializes IP addresses as strings in
        // human-readable formats.
        Value::Str(self.to_string())
    }
}
impl Deserialize for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|e| DeError::custom(format!("bad IPv4 address {s:?}: {e}"))),
            _ => Err(DeError::expected("IPv4 address string", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<K: Serialize + fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize + fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v
                    .as_arr()
                    .ok_or_else(|| DeError::expected("tuple array", v))?;
                if items.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {LEN}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_defaults_to_none() {
        assert_eq!(Option::<u32>::from_missing("x"), Ok(None));
        assert!(u32::from_missing("x").is_err());
    }

    #[test]
    fn integers_round_trip_through_value() {
        let v = 300u16.to_value();
        assert_eq!(u16::from_value(&v), Ok(300));
        assert!(u8::from_value(&v).is_err());
        let neg = (-5i32).to_value();
        assert_eq!(i32::from_value(&neg), Ok(-5));
        let big = (u128::MAX - 1).to_value();
        assert_eq!(u128::from_value(&big), Ok(u128::MAX - 1));
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1u8, "x".to_string()).to_value();
        assert_eq!(
            v,
            Value::Arr(vec![Value::U64(1), Value::Str("x".into())])
        );
        let back: (u8, String) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1u8, "x".to_string()));
    }
}
