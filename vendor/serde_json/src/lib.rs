//! Offline vendored JSON serializer/deserializer over the vendored
//! `serde` data model.
//!
//! Output is compact (no whitespace), objects keep struct-definition
//! field order, floats print via Rust's shortest round-trip formatting
//! and parse via the standard library's correctly-rounded parser — so
//! `value == parse(print(value))` holds exactly, which is what the
//! upstream `float_roundtrip` feature guarantees.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::U128(n) => out.push_str(&n.to_string()),
        Value::F32(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Serialize to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Parser<'a> {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| self.err(format!("invalid UTF-8: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let n =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(n)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(
                                self.err(format!("invalid escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    // Negative magnitude that fits i64?
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((n as i128).checked_neg().unwrap() as i64));
                    }
                }
            } else {
                if let Ok(n) = text.parse::<u64>() {
                    return Ok(Value::U64(n));
                }
                if let Ok(n) = text.parse::<u128>() {
                    return Ok(Value::U128(n));
                }
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| self.err(format!("bad number `{text}`: {e}")))
    }
}

/// Parse a `Value` from JSON text, requiring the whole input be consumed.
pub fn parse_value(bytes: &[u8]) -> Result<Value> {
    let mut p = Parser::new(bytes);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let v = parse_value(bytes)?;
    Ok(T::from_value(&v)?)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for json in [
            "null", "true", "false", "0", "-1", "42", "1.5", "-0.25", "\"hi\"", "[]", "{}",
            "[1,2,3]", "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = parse_value(json.as_bytes()).unwrap();
            let out = {
                let mut s = String::new();
                write_value(&mut s, &v);
                s
            };
            assert_eq!(out, json, "round-trip of {json}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 55.5, 1e30, -2.5e-10, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{8}\u{c}\r\u{1}☃";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        // Surrogate-pair escape parses.
        let emoji: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(emoji, "😀");
    }

    #[test]
    fn big_integers_survive() {
        let big = u128::MAX - 3;
        let json = to_string(&big).unwrap();
        let back: u128 = from_str(&json).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "nul", "1 2", "+5"] {
            assert!(parse_value(bad.as_bytes()).is_err(), "{bad:?} should fail");
        }
    }
}
