//! Offline vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! `syn`/`quote` are unavailable in this hermetic build, so the derive
//! input is parsed directly from the `proc_macro::TokenStream` and the
//! impls are generated as source strings. The supported input grammar is
//! exactly what this workspace uses:
//!
//! * structs with named fields, tuple/newtype structs, unit structs,
//! * enums with unit, newtype, tuple and struct variants
//!   (externally-tagged representation, like upstream serde),
//! * field/variant attributes `#[serde(rename = "...")]`,
//!   `#[serde(default)]`, `#[serde(skip_serializing_if = "path")]`.
//!
//! Generics are not supported (no generic serialized types exist in the
//! workspace; deriving on one fails with a compile error).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    rename: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: SerdeAttrs,
}

#[derive(Debug)]
enum Body {
    Unit,
    /// Tuple struct / variant with N unnamed fields.
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    attrs: SerdeAttrs,
    body: Body,
}

#[derive(Debug)]
struct Input {
    name: String,
    is_enum: bool,
    body: Body,
    variants: Vec<Variant>,
}

/// Iterate tokens with one-token lookahead.
struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consume `#[...]` attributes; collect any `#[serde(...)]` contents.
    fn eat_attrs(&mut self) -> SerdeAttrs {
        let mut attrs = SerdeAttrs::default();
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    parse_attr_group(g.stream(), &mut attrs);
                }
                other => panic!("serde derive: expected [...] after '#', got {other:?}"),
            }
        }
        attrs
    }

    /// Consume an optional `pub` / `pub(...)` visibility.
    fn eat_vis(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected identifier, got {other:?}"),
        }
    }

    /// Skip a type expression up to (not including) a top-level `,`.
    /// Tracks `<`/`>` depth; grouped tokens hide their internal commas.
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn parse_attr_group(inner: TokenStream, attrs: &mut SerdeAttrs) {
    let mut c = Cursor::new(inner);
    // Only `serde(...)` attributes carry information; doc comments and
    // other attributes are ignored.
    if !c.eat_ident("serde") {
        return;
    }
    let group = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("serde derive: malformed #[serde] attribute: {other:?}"),
    };
    let mut c = Cursor::new(group);
    loop {
        match c.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                let key = id.to_string();
                let value = if c.eat_punct('=') {
                    match c.next() {
                        Some(TokenTree::Literal(lit)) => {
                            let s = lit.to_string();
                            Some(s.trim_matches('"').to_string())
                        }
                        other => panic!("serde derive: expected string after `{key} =`, got {other:?}"),
                    }
                } else {
                    None
                };
                match (key.as_str(), value) {
                    ("rename", Some(v)) => attrs.rename = Some(v),
                    ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
                    ("default", None) => attrs.default = true,
                    (other, _) => panic!("serde derive: unsupported serde attribute `{other}`"),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
            other => panic!("serde derive: unexpected token in #[serde(...)]: {other:?}"),
        }
    }
}

fn parse_named_fields(inner: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(inner);
    let mut fields = Vec::new();
    loop {
        if c.peek().is_none() {
            break;
        }
        let attrs = c.eat_attrs();
        c.eat_vis();
        let name = c.expect_ident();
        assert!(c.eat_punct(':'), "serde derive: expected ':' after field `{name}`");
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(inner: TokenStream) -> usize {
    let mut c = Cursor::new(inner);
    let mut n = 0;
    loop {
        if c.peek().is_none() {
            break;
        }
        let _ = c.eat_attrs();
        c.eat_vis();
        c.skip_type();
        c.eat_punct(',');
        n += 1;
    }
    n
}

fn parse_input(ts: TokenStream) -> Input {
    let mut c = Cursor::new(ts);
    let _outer = c.eat_attrs();
    c.eat_vis();
    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        panic!("serde derive: expected `struct` or `enum`");
    };
    let name = c.expect_ident();
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic types are not supported");
    }
    if is_enum {
        let group = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde derive: expected enum body, got {other:?}"),
        };
        let mut vc = Cursor::new(group);
        let mut variants = Vec::new();
        loop {
            if vc.peek().is_none() {
                break;
            }
            let attrs = vc.eat_attrs();
            let vname = vc.expect_ident();
            let body = match vc.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    vc.pos += 1;
                    Body::Named(fields)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    vc.pos += 1;
                    Body::Tuple(n)
                }
                _ => Body::Unit,
            };
            vc.eat_punct(',');
            variants.push(Variant {
                name: vname,
                attrs,
                body,
            });
        }
        Input {
            name,
            is_enum,
            body: Body::Unit,
            variants,
        }
    } else {
        let body = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        };
        Input {
            name,
            is_enum,
            body,
            variants: Vec::new(),
        }
    }
}

fn wire_name(rust_name: &str, attrs: &SerdeAttrs) -> String {
    attrs.rename.clone().unwrap_or_else(|| rust_name.to_string())
}

/// `Serialize` body for a named-field set, given an accessor prefix
/// (e.g. `&self.` for structs, `` for destructured variants).
fn serialize_named(fields: &[Field], access: &dyn Fn(&str) -> String) -> String {
    let mut out = String::from("{ let mut obj: Vec<(String, serde::Value)> = Vec::new();\n");
    for f in fields {
        let expr = access(&f.name);
        let wire = wire_name(&f.name, &f.attrs);
        if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!(
                "if !{pred}({expr}) {{ obj.push((\"{wire}\".to_string(), serde::Serialize::to_value({expr}))); }}\n"
            ));
        } else {
            out.push_str(&format!(
                "obj.push((\"{wire}\".to_string(), serde::Serialize::to_value({expr})));\n"
            ));
        }
    }
    out.push_str("serde::Value::Obj(obj) }");
    out
}

/// `Deserialize` body constructing `ctor { f: ..., ... }` from object
/// fields bound to `fields`.
fn deserialize_named(fields: &[Field], ctor: &str) -> String {
    let mut out = format!("Ok({ctor} {{\n");
    for f in fields {
        let wire = wire_name(&f.name, &f.attrs);
        let missing = if f.attrs.default {
            "std::default::Default::default()".to_string()
        } else {
            format!("serde::Deserialize::from_missing(\"{wire}\")?")
        };
        out.push_str(&format!(
            "{name}: match serde::find_field(fields, \"{wire}\") {{ Some(v) => serde::Deserialize::from_value(v)?, None => {missing} }},\n",
            name = f.name
        ));
    }
    out.push_str("})");
    out
}

fn generate_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = if input.is_enum {
        let mut arms = String::new();
        for v in &input.variants {
            let wire = wire_name(&v.name, &v.attrs);
            match &v.body {
                Body::Unit => arms.push_str(&format!(
                    "{name}::{v} => serde::Value::Str(\"{wire}\".to_string()),\n",
                    v = v.name
                )),
                Body::Tuple(1) => arms.push_str(&format!(
                    "{name}::{v}(f0) => serde::Value::Obj(vec![(\"{wire}\".to_string(), serde::Serialize::to_value(f0))]),\n",
                    v = v.name
                )),
                Body::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let elems: Vec<String> = binds
                        .iter()
                        .map(|b| format!("serde::Serialize::to_value({b})"))
                        .collect();
                    arms.push_str(&format!(
                        "{name}::{v}({binds}) => serde::Value::Obj(vec![(\"{wire}\".to_string(), serde::Value::Arr(vec![{elems}]))]),\n",
                        v = v.name,
                        binds = binds.join(", "),
                        elems = elems.join(", ")
                    ));
                }
                Body::Named(fields) => {
                    let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                    let inner = serialize_named(fields, &|f| f.to_string());
                    arms.push_str(&format!(
                        "{name}::{v} {{ {binds} }} => serde::Value::Obj(vec![(\"{wire}\".to_string(), {inner})]),\n",
                        v = v.name,
                        binds = binds.join(", ")
                    ));
                }
            }
        }
        format!("match self {{\n{arms}}}")
    } else {
        match &input.body {
            Body::Unit => "serde::Value::Null".to_string(),
            Body::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
            Body::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("serde::Value::Arr(vec![{}])", elems.join(", "))
            }
            Body::Named(fields) => serialize_named(fields, &|f| format!("&self.{f}")),
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = if input.is_enum {
        let mut str_arms = String::new();
        let mut obj_arms = String::new();
        for v in &input.variants {
            let wire = wire_name(&v.name, &v.attrs);
            match &v.body {
                Body::Unit => {
                    str_arms.push_str(&format!("\"{wire}\" => Ok({name}::{v}),\n", v = v.name));
                    // Also accept `{"Variant": null}` (map form).
                    obj_arms.push_str(&format!(
                        "\"{wire}\" => {{ let _ = inner; Ok({name}::{v}) }},\n",
                        v = v.name
                    ));
                }
                Body::Tuple(1) => obj_arms.push_str(&format!(
                    "\"{wire}\" => Ok({name}::{v}(serde::Deserialize::from_value(inner)?)),\n",
                    v = v.name
                )),
                Body::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    obj_arms.push_str(&format!(
                        "\"{wire}\" => {{\n\
                         let items = inner.as_arr().ok_or_else(|| serde::DeError::expected(\"tuple variant array\", inner))?;\n\
                         if items.len() != {n} {{ return Err(serde::DeError::custom(\"wrong tuple variant arity\")); }}\n\
                         Ok({name}::{v}({elems}))\n}},\n",
                        v = v.name,
                        elems = elems.join(", ")
                    ));
                }
                Body::Named(fields) => {
                    let ctor = format!("{name}::{v}", v = v.name);
                    let inner = deserialize_named(fields, &ctor);
                    obj_arms.push_str(&format!(
                        "\"{wire}\" => {{\n\
                         let fields = inner.as_obj().ok_or_else(|| serde::DeError::expected(\"struct variant object\", inner))?;\n\
                         {inner}\n}},\n"
                    ));
                }
            }
        }
        format!(
            "match v {{\n\
             serde::Value::Str(s) => match s.as_str() {{\n{str_arms}\
             other => Err(serde::DeError::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n}},\n\
             serde::Value::Obj(tagged) if tagged.len() == 1 => {{\n\
             let (tag, inner) = &tagged[0];\n\
             match tag.as_str() {{\n{obj_arms}\
             other => Err(serde::DeError::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n\
             _ => Err(serde::DeError::expected(\"{name} variant\", v)),\n}}"
        )
    } else {
        match &input.body {
            Body::Unit => format!("{{ let _ = v; Ok({name}) }}"),
            Body::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
            Body::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "{{\n\
                     let items = v.as_arr().ok_or_else(|| serde::DeError::expected(\"tuple struct array\", v))?;\n\
                     if items.len() != {n} {{ return Err(serde::DeError::custom(\"wrong tuple struct arity\")); }}\n\
                     Ok({name}({elems}))\n}}",
                    elems = elems.join(", ")
                )
            }
            Body::Named(fields) => {
                let inner = deserialize_named(fields, name);
                format!(
                    "{{\n\
                     let fields = v.as_obj().ok_or_else(|| serde::DeError::expected(\"object for {name}\", v))?;\n\
                     {inner}\n}}"
                )
            }
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_serialize(&parsed)
        .parse()
        .expect("serde derive: generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_deserialize(&parsed)
        .parse()
        .expect("serde derive: generated Deserialize impl parses")
}
