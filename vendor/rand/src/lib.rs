//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The workspace is built in a hermetic environment with no access to
//! crates.io, so the handful of `rand` APIs the simulator uses are
//! re-implemented here **bit-compatibly** with `rand` 0.8.5:
//!
//! * [`RngCore`] / [`SeedableRng`] (with the PCG32-based
//!   `seed_from_u64` expansion used by `rand_core` 0.6),
//! * [`Rng::gen`] for floats and integers (the `Standard` distribution
//!   formulas),
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` (widening-multiply
//!   rejection sampling for integers, the `[1, 2)` mantissa trick for
//!   floats).
//!
//! Bit-compatibility matters: every experiment table in
//! `figures_output.txt` and every band in `EXPERIMENTS.md` was recorded
//! from seeded runs, and those seeds must keep producing the same
//! streams.

#![forbid(unsafe_code)]

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with PCG32 (identical to
    /// `rand_core` 0.6's default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A type samplable from the `Standard` distribution via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A type samplable uniformly from a range via [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draw one value from `[low, high)` (or `[low, high]` if `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! standard_via_u32 {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $ty
            }
        }
    )*};
}
macro_rules! standard_via_u64 {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_via_u32!(u8, u16, u32, i8, i16, i32);
standard_via_u64!(u64, usize, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // `rand` 0.8: the highest bit of a fresh u32.
        rng.next_u32() & (1 << 31) != 0
    }
}
impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 fresh mantissa bits scaled into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 fresh mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty) => {
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let range: $u_large = if inclusive {
                    assert!(low <= high, "cannot sample empty range");
                    ((high as $unsigned).wrapping_sub(low as $unsigned) as $u_large)
                        .wrapping_add(1)
                } else {
                    assert!(low < high, "cannot sample empty range");
                    (high as $unsigned).wrapping_sub(low as $unsigned) as $u_large
                };
                if range == 0 {
                    // Inclusive span covering the whole type.
                    return <$ty>::sample_standard(rng);
                }
                // `rand` 0.8's widening-multiply rejection: accept when the
                // low product half falls inside the unbiased zone.
                let zone: $u_large = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    // Small types are widened; use the exact rejection zone.
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = <$u_large>::sample_standard(rng);
                    let t = (v as $wide) * (range as $wide);
                    let hi = (t >> <$u_large>::BITS) as $u_large;
                    let lo = t as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u8, u8, u32, u64);
uniform_int_impl!(u16, u16, u32, u64);
uniform_int_impl!(u32, u32, u32, u64);
uniform_int_impl!(u64, u64, u64, u128);
uniform_int_impl!(usize, usize, usize, u128);
uniform_int_impl!(i8, u8, u32, u64);
uniform_int_impl!(i16, u16, u32, u64);
uniform_int_impl!(i32, u32, u32, u64);
uniform_int_impl!(i64, u64, u64, u128);
uniform_int_impl!(isize, usize, usize, u128);

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $fraction_bits:expr) => {
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Inclusive float ranges do not appear in this codebase;
                // the open-range sampler covers both (the end point has
                // measure zero).
                let _ = inclusive;
                assert!(low < high, "cannot sample empty range");
                let mut scale = high - low;
                assert!(scale.is_finite(), "range overflow");
                loop {
                    // Fresh mantissa under a fixed exponent: value in [1, 2).
                    let bits = (<$uty>::sample_standard(rng) >> $bits_to_discard)
                        | ((1 as $uty) << $fraction_bits)
                        | (((1 as $uty) << ($fraction_bits + 1)) - ((1 as $uty) << $fraction_bits));
                    let _ = bits;
                    let mant = <$uty>::sample_standard(rng) >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(mant | EXPONENT_ONE);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Rounding pushed us onto `high`; shave one ulp.
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
                /// Bit pattern of the exponent for values in [1, 2).
                const EXPONENT_ONE: $uty = (1.0 as $ty).to_bits();
            }
        }
    };
}

uniform_float_impl!(f32, u32, 32 - 23, 23);
uniform_float_impl!(f64, u64, 64 - 52, 52);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the `Standard` distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` (via `rand` 0.8's 64-bit
    /// fixed-point comparison).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0usize..=3);
            assert!(i <= 3);
            let b = rng.gen_range(0u8..255);
            assert!(b < 255);
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
