//! Byte-level golden test for the heavy mobility-family experiments.
//!
//! `figures_output.txt` is the checked-in output of `figures all`. The
//! simnet engine overhaul (timing-wheel scheduler, zero-copy payloads,
//! cancellable timers) is only legal because it changes *nothing* the
//! experiments observe — this test pins that contract at the byte level
//! for the experiments that exercise the engine hardest. Any
//! scheduler or hot-path change that reorders events, perturbs a
//! floating-point accumulation, or shifts a timer shows up here as a
//! one-character diff long before a human would notice it in a table.
//!
//! Ignored by default (it reruns four figure-scale grids); CI runs it
//! with `--release -- --ignored`.

use acacia_bench::{run, runner, set_seed};

#[test]
#[ignore = "figure-scale grids; run with --release -- --ignored"]
fn mobility_family_matches_checked_in_figures_output() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../figures_output.txt"
    ))
    .expect("figures_output.txt is checked in at the repo root");
    runner::set_jobs(None);
    set_seed(42);
    for id in ["fig13", "mobility", "chaos", "loaded"] {
        // `Table::print` emits `render()` plus one trailing newline.
        let rendered = format!("{}\n", run(id).expect("known experiment id").render());
        assert!(
            golden.contains(&rendered),
            "{id} output drifted from figures_output.txt; rerun `figures all` \
             and inspect the diff before re-recording:\n{rendered}"
        );
    }
    // The grids above record timings into the process-global buffer;
    // drain so co-resident tests see a clean slate.
    let _ = runner::drain_timings();
}
