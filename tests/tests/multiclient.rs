//! Two UEs sharing one MEC AR server *in the simulator*: the Fig. 12
//! contention mechanism (serial service at the server) observed end to
//! end, not just in the compute model.

use acacia::arclient::{ArFrontend, ArFrontendConfig};
use acacia::arserver::{ArServer, ArServerConfig};
use acacia::locmgr::{LocalizationManager, LocalizationMetadata};
use acacia::msg::APP_PORT;
use acacia::search::SearchStrategy;
use acacia_geo::floor::FloorPlan;
use acacia_geo::pathloss::PathLossModel;
use acacia_lte::network::{LteConfig, LteNetwork};
use acacia_lte::qci::Qci;
use acacia_lte::ue::AppSelector;
use acacia_lte::wire::PolicyRule;
use acacia_simnet::sim::NodeId;
use acacia_simnet::time::Duration;
use acacia_vision::compute::Device;
use acacia_vision::db::ObjectDb;
use acacia_vision::image::Resolution;

/// Build a MEC network with `n` streaming clients sharing one server;
/// return each client's mean end-to-end frame latency.
fn run_clients(n: usize) -> Vec<f64> {
    let floor = FloorPlan::retail_store();
    let db = ObjectDb::generate_retail(&floor, 1, 5);
    let model = PathLossModel::indoor_default();

    let mut net = LteNetwork::new(LteConfig {
        ue_count: n,
        ..LteConfig::default()
    });
    let locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(&floor, &model));
    let server_addr = acacia_lte::network::addr::MEC_BASE;
    let (server, assigned) = net.add_mec_server(Box::new(ArServer::new(
        ArServerConfig {
            device: Device::I7Octa,
            strategy: SearchStrategy::Naive,
            exec_cap: 16,
            ..ArServerConfig::new(server_addr)
        },
        db.clone(),
        floor.clone(),
        locmgr,
    )));
    assert_eq!(assigned, server_addr);
    let _ = server;

    let mut clients: Vec<NodeId> = Vec::new();
    for i in 0..n {
        let ue_ip = net.attach(i);
        net.activate_dedicated_bearer(
            i,
            PolicyRule {
                service_id: 1 + i as u32,
                ue_addr: ue_ip,
                server_addr,
                server_port: 0,
                qci: Qci(7),
                install: true,
            },
        );
        let cfg = ArFrontendConfig {
            resolution: Resolution::E2E,
            frame_count: 3,
            scene_ids: vec![db.objects()[i % db.len()].id],
            ..ArFrontendConfig::new(ue_ip, server_addr)
        };
        let client = net.connect_ue_app(
            i,
            Box::new(ArFrontend::new(cfg)),
            AppSelector::port(APP_PORT),
        );
        clients.push(client);
    }
    let t0 = net.sim.now();
    for &c in &clients {
        net.sim.schedule_timer(c, t0, ArFrontend::KICKOFF);
    }
    net.run_for(Duration::from_secs(60));

    clients
        .iter()
        .map(|&c| {
            let f = net.sim.node_ref::<ArFrontend>(c);
            assert_eq!(f.frames.len(), 3, "client must finish its frames");
            f.frames.iter().map(|s| s.total_s()).sum::<f64>() / f.frames.len() as f64
        })
        .collect()
}

#[test]
fn concurrent_clients_contend_at_the_server() {
    let solo = run_clients(1)[0];
    let duo = run_clients(2);
    let duo_mean = (duo[0] + duo[1]) / 2.0;
    // Fig. 12: two clients roughly double the (match-dominated) latency.
    assert!(
        duo_mean > 1.3 * solo,
        "two clients should contend: solo {solo:.3}s vs duo {duo_mean:.3}s"
    );
    assert!(
        duo_mean < 3.0 * solo,
        "contention should stay near 2x: solo {solo:.3}s vs duo {duo_mean:.3}s"
    );
}

#[test]
fn both_ues_hold_independent_dedicated_bearers() {
    let floor = FloorPlan::retail_store();
    let db = ObjectDb::generate_retail(&floor, 1, 5);
    let model = PathLossModel::indoor_default();
    let mut net = LteNetwork::new(LteConfig {
        ue_count: 2,
        ..LteConfig::default()
    });
    let locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(&floor, &model));
    let server_addr = acacia_lte::network::addr::MEC_BASE;
    let _ = net.add_mec_server(Box::new(ArServer::new(
        ArServerConfig {
            device: Device::I7Octa,
            strategy: SearchStrategy::Naive,
            exec_cap: 16,
            ..ArServerConfig::new(server_addr)
        },
        db,
        floor,
        locmgr,
    )));
    for i in 0..2 {
        let ue_ip = net.attach(i);
        net.activate_dedicated_bearer(
            i,
            PolicyRule {
                service_id: 1 + i as u32,
                ue_addr: ue_ip,
                server_addr,
                server_port: 0,
                qci: Qci(7),
                install: true,
            },
        );
    }
    use acacia_lte::ue::Ue;
    for i in 0..2 {
        assert!(net.sim.node_ref::<Ue>(net.ues[i]).has_dedicated_bearer());
    }
    // The local GW-U carries UL+DL rule pairs for both UEs.
    use acacia_lte::switch::FlowSwitch;
    assert_eq!(
        net.sim.node_ref::<FlowSwitch>(net.local_gwu).rule_count(),
        4
    );
}
