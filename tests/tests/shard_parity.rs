//! Shard-parity differential harness: the sharded engine's determinism
//! contract (DESIGN.md §5.2) at the byte level.
//!
//! The spatially sharded engine is only legal because a run at any
//! `--shards N` is byte-identical to the single-threaded run: shards
//! exchange cross-shard arrivals under conservative lookahead and every
//! shard pops its events in the same `(at, key)` total order the merged
//! single wheel would have used. This test pins that contract the same
//! way `golden_output.rs` pins the engine overhaul: the heavy
//! mobility-family experiments are rendered at shards {1, 2, 4, 8} and
//! every rendering must equal the checked-in single-threaded golden
//! (`figures_output.txt`), so a lookahead bug, a mis-ordered exchange,
//! or a shard-dependent RNG pull shows up as a one-character diff.
//!
//! The scale benchmark is not part of `figures all` (its stderr is
//! wall-clock dependent), so its stdout is compared against its own
//! shards=1 rendering instead of the golden file.
//!
//! Ignored by default (it reruns figure-scale grids 4×); CI runs the
//! matrix with `--release -- --ignored`.

use acacia_bench::{run, runner, set_seed};
use acacia_simnet::set_default_shards;
use std::sync::Mutex;

/// Both the runner's jobs knob and the engine's shard knob are
/// process-wide; tests in this binary run concurrently, so every test
/// that touches either serializes on this lock.
static ENGINE_KNOBS: Mutex<()> = Mutex::new(());

/// The shard counts of the differential matrix.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Render one experiment's stdout at a given shard count, restoring the
/// single-shard default afterwards. Matches `Table::print` (render plus
/// one trailing newline), which is what `figures_output.txt` records.
fn render_at_shards(id: &str, shards: usize) -> String {
    set_default_shards(Some(shards));
    let out = format!("{}\n", run(id).expect("known experiment id").render());
    set_default_shards(None);
    out
}

#[test]
#[ignore = "figure-scale grids x 4 shard counts; run with --release -- --ignored"]
fn mobility_family_matches_golden_at_every_shard_count() {
    let _guard = ENGINE_KNOBS.lock().expect("engine knobs lock");
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../figures_output.txt"
    ))
    .expect("figures_output.txt is checked in at the repo root");
    runner::set_jobs(None);
    set_seed(42);
    for id in ["mobility", "chaos", "loaded"] {
        for shards in SHARD_COUNTS {
            let rendered = render_at_shards(id, shards);
            assert!(
                golden.contains(&rendered),
                "{id} at --shards {shards} drifted from the single-threaded \
                 golden in figures_output.txt:\n{rendered}"
            );
        }
    }
    let _ = runner::drain_timings();
}

#[test]
#[ignore = "figure-scale grids x 4 shard counts; run with --release -- --ignored"]
fn scale_benchmark_is_byte_identical_at_every_shard_count() {
    let _guard = ENGINE_KNOBS.lock().expect("engine knobs lock");
    runner::set_jobs(None);
    set_seed(42);
    let single = render_at_shards("scale", 1);
    for shards in [2, 4, 8] {
        let sharded = render_at_shards("scale", shards);
        assert_eq!(
            sharded, single,
            "scale stdout at --shards {shards} must match --shards 1 exactly"
        );
    }
    let _ = runner::drain_timings();
}
