//! City soak: the 8-shard city under a 30% control-plane drop storm.
//!
//! The chaos suite established that one walking UE survives heavy
//! control-plane loss; this soak asks the same of the sharded city —
//! 8 regions on 8 shards, every region's S1AP/X2 signalling crossing
//! shard boundaries to the shared core while 30% of it is dropped —
//! across five seeds. Two invariants:
//!
//! * **zero wedged UEs** — the chaos sweep's definition: no UE ends the
//!   run outside a legal state (`Connected`/`Idle`) and no handover
//!   procedure is left open. A sustained 30% drop storm *can* cost a
//!   session frames (the chaos notes document the same at its 50%
//!   cell — the restore chain is itself signalling), so lost frames are
//!   reported honestly rather than asserted away; every session must
//!   still make forward progress (at least one frame end-to-end);
//! * **zero cross-shard event loss** — the engine's conservation
//!   counters (arrivals handed to the exchange vs arrivals accepted
//!   from it) must balance exactly, so no in-flight message can vanish
//!   at a shard boundary even when the fault plan is dropping its
//!   payload siblings.
//!
//! Ignored by default (five multi-second runs); CI runs it with
//! `--release -- --ignored`.

use acacia::city::{CityConfig, CityScenario};
use acacia_simnet::set_default_shards;

/// Seeds swept by the soak, disjoint from the fixed-seed figures (42).
const SOAK_SEEDS: [u64; 5] = [41, 42, 43, 44, 45];

/// Control-plane drop probability, matching the chaos suite's heaviest
/// sustained sweep point.
const DROP_RATE: f64 = 0.30;

#[test]
#[ignore = "five multi-second sharded city runs; run with --release -- --ignored"]
fn sharded_city_survives_control_plane_drop_storm() {
    for seed in SOAK_SEEDS {
        let cfg = CityConfig {
            seed,
            ctrl_drop_rate: DROP_RATE,
            fault_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ..CityConfig::smoke()
        };
        set_default_shards(Some(8));
        let report = CityScenario::build(cfg).run();
        set_default_shards(None);

        assert_eq!(report.events_by_shard.len(), 8, "city ran on 8 shards");
        assert!(
            report.cross_shard_sent > 0,
            "seed {seed}: regions must actually exchange events with the core shard"
        );
        assert!(
            report.cross_shard_conserved(),
            "seed {seed}: cross-shard exchange lost events ({} sent, {} received)",
            report.cross_shard_sent,
            report.cross_shard_received
        );
        assert_eq!(
            report.protocol_wedged(),
            0,
            "seed {seed}: {} UEs in an illegal end state, {} open procedures \
             under {DROP_RATE} control-plane drop",
            report.stuck_ues,
            report.outstanding_procedures
        );
        assert!(
            report.ues.iter().all(|u| u.frames_done >= 1),
            "seed {seed}: a session made no forward progress: {:?}",
            report
                .ues
                .iter()
                .enumerate()
                .filter(|(_, u)| u.frames_done == 0)
                .collect::<Vec<_>>()
        );
        let frames_done: u64 = report.ues.iter().map(|u| u.frames_done).sum();
        eprintln!(
            "city soak seed {seed}: {} UEs, {}/{} frames, {} handovers, {} reanchors, \
             {} events, {} cross-shard, 0 protocol-wedged",
            report.ue_count,
            frames_done,
            report.frames_requested * report.ue_count as u64,
            report.total_handovers(),
            report.dedicated_reanchored,
            report.events_processed,
            report.cross_shard_received
        );
    }
}
