//! A moving shopper: as the user walks between store sections, the
//! periodic rxPower reports shift, the server's location estimate tracks
//! them, and the pruned search space follows the user.

use acacia::arclient::{ArFrontend, ArFrontendConfig};
use acacia::arserver::{ArServer, ArServerConfig};
use acacia::locmgr::{LocalizationManager, LocalizationMetadata};
use acacia::msg::APP_PORT;
use acacia::search::SearchStrategy;
use acacia_d2d::channel::RadioChannel;
use acacia_d2d::discovery::ProximityWorld;
use acacia_d2d::modem::Modem;
use acacia_d2d::service::SubscriptionFilter;
use acacia_geo::floor::FloorPlan;
use acacia_geo::pathloss::PathLossModel;
use acacia_geo::point::Point;
use acacia_lte::network::{LteConfig, LteNetwork};
use acacia_lte::qci::Qci;
use acacia_lte::ue::AppSelector;
use acacia_lte::wire::PolicyRule;
use acacia_simnet::time::Duration;
use acacia_vision::compute::Device;
use acacia_vision::db::ObjectDb;
use acacia_vision::image::Resolution;

/// Sample the discovery world at a position, returning averaged readings.
fn readings_at(world: &ProximityWorld, pos: Point, base_tick: u64) -> Vec<(String, f64)> {
    let mut modem = Modem::new();
    modem.subscribe(SubscriptionFilter::service_wide("acme"));
    let mut acc: std::collections::HashMap<String, Vec<f64>> = Default::default();
    for t in 0..3 {
        for ev in world.scan(&mut modem, pos, base_tick + t) {
            acc.entry(ev.publisher).or_default().push(ev.rx_power_dbm);
        }
    }
    acc.into_iter()
        .map(|(k, v)| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            (k, m)
        })
        .collect()
}

#[test]
fn moving_user_repoints_the_search_space() {
    let floor = FloorPlan::retail_store();
    let db = ObjectDb::generate_retail(&floor, 2, 21);
    let model = PathLossModel::indoor_default();
    let world = ProximityWorld::from_floor(&floor, "acme", RadioChannel::new(model, 21));

    // Walk: start in the west ("food") aisle, end in the east ("sports").
    let west = floor.checkpoints[0].pos; // C1 (1.75, 2.5)
    let east = floor.checkpoints[7].pos; // C8 (26.25, 2.5)

    let mut net = LteNetwork::new(LteConfig::default());
    let locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(&floor, &model));
    let server_addr = acacia_lte::network::addr::MEC_BASE;
    let (server, _) = net.add_mec_server(Box::new(ArServer::new(
        ArServerConfig {
            device: Device::I7Octa,
            strategy: SearchStrategy::ACACIA_DEFAULT,
            exec_cap: 16,
            ..ArServerConfig::new(server_addr)
        },
        db.clone(),
        floor.clone(),
        locmgr,
    )));
    let ue_ip = net.attach(0);
    net.activate_dedicated_bearer(
        0,
        PolicyRule {
            service_id: 1,
            ue_addr: ue_ip,
            server_addr,
            server_port: 0,
            qci: Qci(7),
            install: true,
        },
    );

    // The user walks the south aisle west→east (checkpoints C1..C8),
    // photographing the object anchored at each checkpoint as they pass.
    // Their rxPower reports track the walk (reports every second; the
    // shopper lingers ~1.5 s per object).
    let aisle: Vec<Point> = (0..8).map(|i| floor.checkpoints[i].pos).collect();
    let scene_ids: Vec<u64> = aisle
        .iter()
        .map(|&cp| {
            db.objects()
                .iter()
                .find(|o| o.pos.distance(cp) < 1e-6)
                .expect("an object is anchored at each checkpoint")
                .id
        })
        .collect();
    let west_obj = scene_ids[0];
    let east_obj = *scene_ids.last().unwrap();
    // The walk completes by tick 8 (frames trail the reports slightly, and
    // the server's EWMA needs a couple of readings to converge at the
    // destination).
    let schedule: Vec<Vec<(String, f64)>> = (0..13)
        .map(|i| {
            let frac = (i as f64 / 8.0).clamp(0.0, 1.0);
            let pos = west.lerp(east, frac);
            readings_at(&world, pos, i as u64)
        })
        .collect();
    let cfg = ArFrontendConfig {
        resolution: Resolution::E2E,
        frame_count: 8,
        scene_ids,
        rx_report_schedule: schedule,
        report_period: Duration::from_secs(1),
        min_frame_interval: Some(Duration::from_millis(1_500)),
        ..ArFrontendConfig::new(ue_ip, server_addr)
    };
    let client = net.connect_ue_app(
        0,
        Box::new(ArFrontend::new(cfg)),
        AppSelector::port(APP_PORT),
    );
    let t0 = net.sim.now();
    net.sim.schedule_timer(client, t0, ArFrontend::KICKOFF);
    net.run_for(Duration::from_secs(40));

    let srv = net.sim.node_ref::<ArServer>(server);
    assert_eq!(srv.records.len(), 8, "all frames processed");
    // Early frames match the west object, late frames the east one — and
    // both matched *through the pruned space*, so the pruning followed.
    let west_tag = db.get(west_obj).unwrap().tag.clone();
    let east_tag = db.get(east_obj).unwrap().tag.clone();
    assert_eq!(srv.records[0].matched.as_deref(), Some(west_tag.as_str()));
    assert_eq!(
        srv.records.last().unwrap().matched.as_deref(),
        Some(east_tag.as_str())
    );
    for r in &srv.records {
        assert!(
            r.candidates < db.len(),
            "frame {} was not pruned ({} candidates)",
            r.seq,
            r.candidates
        );
    }
    // Matching held up across movement.
    let correct = srv
        .records
        .iter()
        .filter(|r| r.matched.as_deref() == db.get(r.truth).map(|o| o.tag.as_str()))
        .count();
    assert!(correct >= 6, "{correct}/8 correct while walking");
}
