//! Cross-crate pipeline tests: discovery → localization → pruning →
//! matching, and the LTE bearer machinery those stages ride on.

use acacia::locmgr::{LocalizationManager, LocalizationMetadata};
use acacia::search::{candidates, SearchContext, SearchStrategy};
use acacia_d2d::channel::RadioChannel;
use acacia_d2d::discovery::ProximityWorld;
use acacia_d2d::modem::Modem;
use acacia_d2d::service::SubscriptionFilter;
use acacia_geo::floor::FloorPlan;
use acacia_geo::pathloss::PathLossModel;
use acacia_vision::db::ObjectDb;
use acacia_vision::feature::{object_features, render_view, Similarity, ViewParams};
use acacia_vision::image::{ImageSpec, Resolution};
use acacia_vision::matcher::MatcherConfig;

/// The full context pipeline at every checkpoint: LTE-direct readings →
/// location estimate → pruned candidate set that still contains the true
/// object's subsection.
#[test]
fn pruned_search_space_contains_the_truth_everywhere() {
    let floor = FloorPlan::retail_store();
    let db = ObjectDb::generate_retail(&floor, 2, 11);
    let model = PathLossModel::indoor_default();
    let world = ProximityWorld::from_floor(&floor, "acme", RadioChannel::new(model, 11));

    let mut misses = 0;
    let mut fallbacks = 0;
    for cp in &floor.checkpoints {
        let mut modem = Modem::new();
        modem.subscribe(SubscriptionFilter::service_wide("acme"));
        let mut locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(&floor, &model));
        for ev in world.scan_dwell(&mut modem, cp.pos, 0, 4) {
            locmgr.report(&ev.publisher, ev.rx_power_dbm);
        }
        let ctx = SearchContext {
            rx_readings: locmgr.rx_view(),
            location: locmgr.estimate(),
        };
        let picked = candidates(SearchStrategy::ACACIA_DEFAULT, &db, &floor, &ctx);
        let true_ss = floor.subsection_at(cp.pos).expect("checkpoint on floor");
        if !picked.iter().any(|o| o.subsection == true_ss) {
            misses += 1;
        }
        if picked.len() == db.len() {
            // Cold-start fallback: too few landmarks decoded at this spot
            // to tri-laterate, so the strategy used the whole database.
            fallbacks += 1;
        }
    }
    // Localization error occasionally pushes the estimate outside the true
    // subsection's neighbourhood; the paper also reports boundary effects
    // (one false negative for the rxPower scheme). Allow a small number.
    assert!(
        misses <= 3,
        "{misses} of 24 checkpoints lost the true subsection"
    );
    assert!(
        fallbacks <= 2,
        "{fallbacks} of 24 checkpoints could not localize at all"
    );
}

/// A frame photographed at a checkpoint matches the right object *through*
/// the pruned search space.
#[test]
fn pruned_match_finds_correct_object() {
    let floor = FloorPlan::retail_store();
    let db = ObjectDb::generate_retail(&floor, 2, 5);
    let model = PathLossModel::indoor_default();
    let world = ProximityWorld::from_floor(&floor, "acme", RadioChannel::new(model, 5));
    let cfg = MatcherConfig {
        exec_cap: 24,
        ..MatcherConfig::default()
    };

    let mut correct = 0;
    let mut total = 0;
    for cp in floor.checkpoints.iter().step_by(4) {
        let mut modem = Modem::new();
        modem.subscribe(SubscriptionFilter::service_wide("acme"));
        let mut locmgr = LocalizationManager::new(LocalizationMetadata::for_floor(&floor, &model));
        for ev in world.scan_dwell(&mut modem, cp.pos, 0, 4) {
            locmgr.report(&ev.publisher, ev.rx_power_dbm);
        }
        let ctx = SearchContext {
            rx_readings: locmgr.rx_view(),
            location: locmgr.estimate(),
        };
        let target = db
            .objects()
            .iter()
            .find(|o| o.pos.distance(cp.pos) < 1e-6)
            .expect("an object is anchored at every checkpoint");
        let spec = ImageSpec::new(target.id, Resolution::E2E);
        let base = object_features(target.id, spec.feature_count());
        let view = render_view(&base, Similarity::from_seed(9), ViewParams::default(), 9);
        let picked = candidates(SearchStrategy::ACACIA_DEFAULT, &db, &floor, &ctx);
        let outcome = db.match_against(&view, picked, &cfg);
        total += 1;
        if outcome.best.map(|(id, _)| id) == Some(target.id) {
            correct += 1;
        }
    }
    assert!(
        correct as f64 / total as f64 >= 0.8,
        "only {correct}/{total} pruned matches were correct"
    );
}

/// Modem filtering keeps non-matching discovery traffic away from apps
/// while the bearer machinery steers only matching flows to the MEC.
#[test]
fn in_modem_filtering_and_tft_steering_compose() {
    use acacia_lte::network::{LteConfig, LteNetwork};
    use acacia_lte::prelude::*;
    use acacia_lte::ue::Ue;
    use acacia_simnet::packet::Packet;
    use acacia_simnet::traffic::Reflector;

    // Discovery: two stores publish; the user cares about one.
    let floor = FloorPlan::retail_store();
    let model = PathLossModel::indoor_default();
    let mut world = ProximityWorld::new(RadioChannel::new(model, 2));
    world.add_publisher(
        "L1",
        floor.landmarks[0].pos,
        acacia_d2d::service::Announcement::new("acme", "laptops"),
    );
    world.add_publisher(
        "X1",
        floor.landmarks[1].pos,
        acacia_d2d::service::Announcement::new("other", "laptops"),
    );
    let mut modem = Modem::new();
    modem.subscribe(SubscriptionFilter::service_wide("acme"));
    let events = world.scan(&mut modem, floor.landmarks[0].pos, 0);
    assert!(events.iter().all(|e| e.announcement.service == "acme"));
    assert_eq!(modem.messages_filtered, 1, "the other store got filtered");

    // Bearer: only traffic to the MEC server rides the dedicated bearer.
    let mut net = LteNetwork::new(LteConfig::default());
    let (_, mec_addr) = net.add_mec_server(Box::new(Reflector::new()));
    let ue_ip = net.attach(0);
    net.activate_dedicated_bearer(
        0,
        PolicyRule {
            service_id: 1,
            ue_addr: ue_ip,
            server_addr: mec_addr,
            server_port: 0,
            qci: Qci(7),
            install: true,
        },
    );
    let ue = net.sim.node_ref::<Ue>(net.ues[0]);
    let to_mec = Packet::udp((ue_ip, 9000), (mec_addr, 9000), 100);
    let to_web = Packet::udp(
        (ue_ip, 9000),
        (std::net::Ipv4Addr::new(8, 8, 8, 8), 80),
        100,
    );
    assert_ne!(
        ue.classify_uplink(&to_mec).unwrap().ebi,
        ue.classify_uplink(&to_web).unwrap().ebi,
        "MEC and Internet traffic must ride different bearers"
    );
}

/// Deployment reports are deterministic given the seed.
#[test]
fn scenarios_are_deterministic() {
    use acacia::scenario::{Deployment, Scenario, ScenarioConfig};
    let run = || {
        let r = Scenario::build(ScenarioConfig::smoke(Deployment::Acacia)).run();
        r.frames
            .iter()
            .map(|f| (f.total_s() * 1e9) as u64)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
