//! The paper's headline claims, asserted end-to-end across all crates
//! (abstract + §7.4). Run at reduced-but-realistic scale so they hold in
//! debug builds; `cargo run -p acacia-bench --release --bin figures -- fig13`
//! produces the full-scale numbers.

use acacia::scenario::{Deployment, Scenario, ScenarioConfig};
use acacia::SessionReport;

fn session(deployment: Deployment) -> SessionReport {
    Scenario::build(ScenarioConfig {
        frame_count: 4,
        exec_cap: 24,
        ..ScenarioConfig::e2e(deployment)
    })
    .run()
}

#[test]
fn headline_latency_reductions() {
    let acacia = session(Deployment::Acacia);
    let mec = session(Deployment::Mec);
    let cloud = session(Deployment::Cloud);

    let (a, m, c) = (
        acacia.mean_total_s(),
        mec.mean_total_s(),
        cloud.mean_total_s(),
    );
    // "ACACIA provides a 70% end-to-end application level latency
    // reduction when compared with existing cloud and mobile solutions,
    // and a 60% reduction compared with a mobile edge cloud solution that
    // only optimizes network latencies."
    let vs_cloud = 1.0 - a / c;
    let vs_mec = 1.0 - a / m;
    assert!(
        (0.55..0.85).contains(&vs_cloud),
        "ACACIA vs CLOUD reduction {vs_cloud:.2} (paper 0.70); totals {a:.3}/{m:.3}/{c:.3}"
    );
    assert!(
        (0.45..0.80).contains(&vs_mec),
        "ACACIA vs MEC reduction {vs_mec:.2} (paper 0.60)"
    );
    // "MEC shows a 25% end-to-end reduction compared to CLOUD."
    let mec_vs_cloud = 1.0 - m / c;
    assert!(
        (0.08..0.40).contains(&mec_vs_cloud),
        "MEC vs CLOUD reduction {mec_vs_cloud:.2} (paper 0.25)"
    );

    // "ACACIA shows a 7.7x reduction for match compared to the other
    // approaches" — ours lands lower (≈5x) because our pruning radius is
    // the mean localization error; assert the band.
    let match_ratio = cloud.mean_match_s() / acacia.mean_match_s();
    assert!(
        (3.0..10.0).contains(&match_ratio),
        "match reduction {match_ratio:.1}x (paper 7.7x)"
    );

    // "...and a 3.15x reduction for network latency compared to CLOUD."
    let net_ratio = cloud.mean_network_s() / acacia.mean_network_s();
    assert!(
        (2.2..6.0).contains(&net_ratio),
        "network reduction {net_ratio:.2}x (paper 3.15x)"
    );

    // "Compute ... no significant difference between the different
    // approaches."
    let compute_spread =
        (acacia.mean_compute_s() - cloud.mean_compute_s()).abs() / cloud.mean_compute_s();
    assert!(compute_spread < 0.2, "compute spread {compute_spread:.2}");
}

#[test]
fn all_deployments_answer_all_frames_correctly() {
    for d in Deployment::ALL {
        let r = session(d);
        assert_eq!(r.frames.len(), 4, "{}", d.name());
        assert!(
            r.accuracy >= 0.75,
            "{} accuracy {:.2}",
            d.name(),
            r.accuracy
        );
    }
}

#[test]
fn bearer_setup_is_on_demand_and_fast() {
    let acacia = session(Deployment::Acacia);
    let cloud = session(Deployment::Cloud);
    assert!(acacia.bearer_setup.is_some(), "ACACIA uses the MRS");
    assert!(cloud.bearer_setup.is_none(), "CLOUD never touches the MRS");
    let setup = acacia.bearer_setup.unwrap();
    assert!(
        setup.millis() >= 5 && setup.millis() < 300,
        "bearer setup {setup}"
    );
}
