//! Golden-ratio regression test for the headline Fig. 13 comparison.
//!
//! EXPERIMENTS.md records the full-scale measured reductions (ACACIA vs
//! CLOUD 74%, vs MEC 66%, MEC vs CLOUD 24%; match 5.1×, network 4.37×
//! against the paper's 70%/60%/25%, 7.7×, 3.15×). This test re-runs the
//! exact fig13 grid (`fig13_reports(10, 48)`, the same call the figures
//! binary makes) and asserts the ratios stay inside bands bracketing
//! those recorded values — any simulator change that silently shifts the
//! headline claims fails here before it reaches EXPERIMENTS.md.

use acacia::scenario::Deployment;
use acacia_bench::experiments::application::fig13_reports;
use acacia_bench::runner;

#[test]
fn fig13_reductions_stay_in_recorded_bands() {
    runner::set_jobs(None); // full grid, default parallelism
    let reports = fig13_reports(10, 48);
    let get = |d: Deployment| {
        reports
            .iter()
            .find(|r| r.deployment == d)
            .expect("deployment present")
    };
    let (a, m, c) = (
        get(Deployment::Acacia),
        get(Deployment::Mec),
        get(Deployment::Cloud),
    );

    // End-to-end reductions (EXPERIMENTS.md: 74% / 66% / 23%).
    let vs_cloud = 1.0 - a.mean_total_s() / c.mean_total_s();
    let vs_mec = 1.0 - a.mean_total_s() / m.mean_total_s();
    let mec_vs_cloud = 1.0 - m.mean_total_s() / c.mean_total_s();
    assert!(
        (0.68..=0.80).contains(&vs_cloud),
        "ACACIA vs CLOUD reduction {vs_cloud:.3}, recorded 0.74"
    );
    assert!(
        (0.60..=0.72).contains(&vs_mec),
        "ACACIA vs MEC reduction {vs_mec:.3}, recorded 0.66"
    );
    assert!(
        (0.17..=0.30).contains(&mec_vs_cloud),
        "MEC vs CLOUD reduction {mec_vs_cloud:.3}, recorded 0.24"
    );

    // Component ratios (EXPERIMENTS.md: match 5.1×, network 4.34×).
    let match_ratio = c.mean_match_s() / a.mean_match_s();
    let net_ratio = c.mean_network_s() / a.mean_network_s();
    assert!(
        (4.5..=6.0).contains(&match_ratio),
        "match reduction {match_ratio:.2}x, recorded 5.1x"
    );
    assert!(
        (3.8..=5.0).contains(&net_ratio),
        "network reduction {net_ratio:.2}x, recorded 4.37x"
    );

    // "No significant difference" in the compute component, and perfect
    // session accuracy in all three deployments.
    assert!((a.mean_compute_s() - c.mean_compute_s()).abs() < 1e-9);
    for r in [a, m, c] {
        assert!(
            (r.accuracy - 1.0).abs() < 1e-9,
            "{:?} accuracy {}",
            r.deployment,
            r.accuracy
        );
    }
}
