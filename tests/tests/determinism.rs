//! The parallel runner's determinism contract (DESIGN.md): experiment
//! output is byte-identical run to run with the same seed, and across
//! any `--jobs` setting — parallel across cells, serial within a cell,
//! index-ordered merge.
//!
//! The experiment ids here are the cheapest grids that still exercise
//! real multi-cell fan-out (debug builds are ~10× slower than the
//! release binary the `figures` CLI uses).

use acacia::scenario::SessionReport;
use acacia_bench::experiments::application::fig13_reports;
use acacia_bench::{run, runner};
use std::sync::Mutex;

/// The runner's jobs knob is process-wide; tests in this binary run
/// concurrently, so every test that touches it serializes on this lock.
static JOBS_KNOB: Mutex<()> = Mutex::new(());

/// Cheap multi-cell experiments: fig3c (3 cells), fig3d (6), fig9b (99).
const IDS: [&str; 3] = ["fig3c", "fig3d", "fig9b"];

fn render_all(jobs: usize) -> String {
    runner::set_jobs(Some(jobs));
    let out = IDS
        .iter()
        .map(|id| run(id).expect("known id").render())
        .collect::<Vec<_>>()
        .join("\n");
    runner::set_jobs(None);
    out
}

#[test]
fn same_seed_twice_is_byte_identical() {
    let _guard = JOBS_KNOB.lock().expect("jobs knob lock");
    let first = render_all(1);
    let second = render_all(1);
    assert_eq!(first, second, "serial output must be stable run to run");
}

#[test]
fn serial_and_parallel_output_are_byte_identical() {
    let _guard = JOBS_KNOB.lock().expect("jobs knob lock");
    let serial = render_all(1);
    let parallel = render_all(4);
    assert_eq!(
        serial, parallel,
        "jobs=4 must merge cells in index order and match jobs=1 exactly"
    );
}

/// Full-precision fingerprint of an end-to-end session report — `{:?}`
/// on the f64s, so any bit-level drift shows up.
fn fingerprint(reports: &[SessionReport]) -> String {
    reports
        .iter()
        .map(|r| {
            format!(
                "{:?} total={:?} net={:?} compute={:?} match={:?} bearer={:?} acc={:?}",
                r.deployment,
                r.mean_total_s(),
                r.mean_network_s(),
                r.mean_compute_s(),
                r.mean_match_s(),
                r.bearer_setup,
                r.accuracy
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn end_to_end_scenario_is_deterministic_across_jobs() {
    let _guard = JOBS_KNOB.lock().expect("jobs knob lock");
    // Smoke scale (like headline.rs) so the debug-build sim stays fast;
    // fig13_reports fans the three deployments out through the runner.
    runner::set_jobs(Some(1));
    let serial = fingerprint(&fig13_reports(3, 24));
    runner::set_jobs(Some(4));
    let parallel = fingerprint(&fig13_reports(3, 24));
    runner::set_jobs(None);
    assert_eq!(
        serial, parallel,
        "per-thread scenario construction must not perturb results"
    );
}
