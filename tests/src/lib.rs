//! Shared helpers for the workspace integration tests.
#![allow(missing_docs)]
