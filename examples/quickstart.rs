//! Quickstart: run one ACACIA end-to-end session and print the latency
//! breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the full stack — simulated LTE/EPC network with split SDN
//! gateways, an MEC-hosted AR server, LTE-direct proximity discovery, the
//! MRS — attaches a UE, lets the device manager request a dedicated bearer
//! on its first interest match, and streams AR frames from a retail-store
//! checkpoint.

use acacia::scenario::{Deployment, Scenario, ScenarioConfig};

fn main() {
    println!("building the ACACIA scenario (LTE/EPC + MEC + LTE-direct)...");
    let cfg = ScenarioConfig {
        frame_count: 5,
        ..ScenarioConfig::e2e(Deployment::Acacia)
    };
    let report = Scenario::build(cfg).run();

    if let Some(setup) = report.bearer_setup {
        println!("dedicated bearer set up in {setup} (MRS -> PCRF -> PCEF -> MME -> eNB -> UE)");
    }
    println!(
        "{} frames answered, {:.0}% matched correctly\n",
        report.frames.len(),
        report.accuracy * 100.0
    );
    println!("per-frame latency breakdown:");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10}  match",
        "frame", "network", "compute", "match", "total"
    );
    for f in &report.frames {
        println!(
            "{:>5} {:>9.1}ms {:>9.1}ms {:>9.1}ms {:>9.1}ms  {}",
            f.seq,
            f.network_s() * 1e3,
            f.compute_s() * 1e3,
            f.match_s() * 1e3,
            f.total_s() * 1e3,
            f.matched.as_deref().unwrap_or("(no match)")
        );
    }
    println!(
        "\nmean end-to-end: {:.0} ms (network {:.0} / compute {:.0} / match {:.0})",
        report.mean_total_s() * 1e3,
        report.mean_network_s() * 1e3,
        report.mean_compute_s() * 1e3,
        report.mean_match_s() * 1e3,
    );
}
