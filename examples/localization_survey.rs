//! Survey LTE-direct indoor localization across the store floor: visit
//! every checkpoint, tri-laterate from landmark rxPower, and report the
//! error distribution and its effect on the AR search space (paper §5.5,
//! §7.1).
//!
//! ```text
//! cargo run --release --example localization_survey
//! ```

use acacia::locmgr::{LocalizationManager, LocalizationMetadata};
use acacia_d2d::channel::RadioChannel;
use acacia_d2d::discovery::ProximityWorld;
use acacia_d2d::modem::Modem;
use acacia_d2d::service::SubscriptionFilter;
use acacia_geo::floor::FloorPlan;
use acacia_geo::pathloss::PathLossModel;
use acacia_simnet::stats::Series;

fn main() {
    let floor = FloorPlan::retail_store();
    let model = PathLossModel::indoor_default();
    let world = ProximityWorld::from_floor(&floor, "acme", RadioChannel::new(model, 1234));

    let mut errors = Series::new();
    let mut pruned_sizes = Series::new();
    println!(
        "{:>6} {:>11} {:>13} {:>8} {:>13}",
        "chkpt", "true (x,y)", "estimate", "err (m)", "search space"
    );
    for cp in &floor.checkpoints {
        let mut modem = Modem::new();
        modem.subscribe(SubscriptionFilter::service_wide("acme"));
        let mut mgr = LocalizationManager::new(LocalizationMetadata::for_floor(&floor, &model));
        for ev in world.scan_dwell(&mut modem, cp.pos, 0, 4) {
            mgr.report(&ev.publisher, ev.rx_power_dbm);
        }
        match mgr.estimate() {
            Some(est) => {
                let err = est.distance(cp.pos);
                errors.push(err);
                let subs = floor.subsections_near(est, 2.5);
                pruned_sizes.push(subs.len() as f64);
                println!(
                    "{:>6} {:>11} {:>13} {:>8.2} {:>8} of 21",
                    cp.name,
                    format!("({:.0},{:.0})", cp.pos.x, cp.pos.y),
                    format!("({:.1},{:.1})", est.x, est.y),
                    err,
                    subs.len()
                );
            }
            None => println!("{:>6}  heard too few landmarks", cp.name),
        }
    }
    println!(
        "\nlocalization error: mean {:.2} m, median {:.2} m, p95 {:.2} m (paper: ~3 m mean)",
        errors.mean(),
        errors.median(),
        errors.percentile(95.0)
    );
    println!(
        "search space pruned to {:.1} of 21 subsections on average (paper: 2-6) — a {:.1}x cut",
        pruned_sizes.mean(),
        21.0 / pruned_sizes.mean()
    );
}
