//! Watch the LTE/EPC control plane at work: attach, dedicated-bearer
//! activation toward a MEC gateway, idle release and service-request
//! re-establishment — with per-protocol message/byte accounting (the
//! paper's §4 overhead analysis).
//!
//! ```text
//! cargo run --release --example bearer_lifecycle
//! ```

use acacia_lte::network::{LteConfig, LteNetwork};
use acacia_lte::prelude::*;
use acacia_simnet::time::Duration;
use acacia_simnet::traffic::Reflector;

fn print_log(title: &str, log: &MsgLog) {
    println!("--- {title} ---");
    for e in log.entries() {
        println!(
            "  t={:>10} {:>9}  {:<28} {:>4} B",
            format!("{:.3}ms", e.at.nanos() as f64 / 1e6),
            e.protocol.name(),
            e.name,
            e.bytes
        );
    }
    print!("{}", log.summary());
    println!();
}

fn main() {
    let mut net = LteNetwork::new(LteConfig::default());
    let (_, mec_addr) = net.add_mec_server(Box::new(Reflector::new()));

    // 1. Attach.
    let ue_ip = net.attach(0);
    println!("UE attached; PGW assigned {ue_ip}\n");
    print_log("attach procedure", &net.log);

    // 2. Dedicated bearer to the MEC server (network-initiated via the
    //    PCRF, terminating on the *local* GW-U).
    net.log.clear();
    net.activate_dedicated_bearer(
        0,
        PolicyRule {
            service_id: 7,
            ue_addr: ue_ip,
            server_addr: mec_addr,
            server_port: 0,
            qci: Qci(7),
            install: true,
        },
    );
    print_log(
        "dedicated bearer activation (paper Fig. 5, steps 1-4)",
        &net.log,
    );

    // 3. The UE goes idle (the 11.576 s inactivity timeout) and comes back.
    net.log.clear();
    net.run_for(Duration::from_secs(1));
    net.trigger_idle_release(0);
    net.service_request(0);
    print_log(
        "idle release + service request (the paper's §4 cycle)",
        &net.log,
    );

    let cycle = net.log.core_bytes();
    println!(
        "per-device control traffic projections: {:.2} MB/day at 929 cycles, {:.1} MB/day at 7200",
        cycle as f64 * 929.0 / 1e6,
        cycle as f64 * 7200.0 / 1e6
    );
    println!("(paper: 2.58 MB and ~20 MB respectively — ACACIA avoids paying this for a second");
    println!(" always-on bearer by creating dedicated bearers on demand, only when LTE-direct");
    println!(" reports a matching service nearby)");
}
