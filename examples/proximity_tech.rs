//! Compare proximity-discovery technologies (paper §8): LTE-direct vs
//! iBeacon vs Wi-Fi Aware driving the *same* ACACIA pipeline — discovery
//! coverage, localization accuracy, and a full end-to-end session each.
//!
//! ```text
//! cargo run --release --example proximity_tech
//! ```

use acacia::locmgr::{LocalizationManager, LocalizationMetadata};
use acacia::scenario::{Deployment, Scenario, ScenarioConfig};
use acacia_d2d::channel::RadioChannel;
use acacia_d2d::discovery::ProximityWorld;
use acacia_d2d::modem::Modem;
use acacia_d2d::service::SubscriptionFilter;
use acacia_d2d::technology::ProximityTech;
use acacia_geo::floor::FloorPlan;
use acacia_simnet::stats::Series;

fn main() {
    let floor = FloorPlan::retail_store();

    println!(
        "{:>12} {:>10} {:>8} {:>14} {:>12} {:>10}",
        "technology", "period", "range", "heard@corner", "loc err (m)", "infra?"
    );
    for tech in ProximityTech::ALL {
        let world =
            ProximityWorld::from_floor(&floor, "acme", RadioChannel::new(tech.pathloss(), 42));
        // Coverage from a far corner.
        let mut modem = Modem::new();
        modem.subscribe(SubscriptionFilter::service_wide("acme"));
        let corner = acacia_geo::point::Point::new(27.5, 14.5);
        let heard: std::collections::HashSet<String> = (0..6)
            .flat_map(|t| world.scan(&mut modem, corner, t))
            .map(|e| e.publisher)
            .collect();

        // Localization error across all checkpoints.
        let mut errors = Series::new();
        for cp in &floor.checkpoints {
            let mut m = Modem::new();
            m.subscribe(SubscriptionFilter::service_wide("acme"));
            let mut mgr =
                LocalizationManager::new(LocalizationMetadata::for_floor(&floor, &tech.pathloss()));
            for ev in world.scan_dwell(&mut m, cp.pos, 0, 4) {
                mgr.report(&ev.publisher, ev.rx_power_dbm);
            }
            if let Some(est) = mgr.estimate() {
                errors.push(est.distance(cp.pos));
            }
        }

        println!(
            "{:>12} {:>9.1}s {:>7.0}m {:>11}/7 {:>12.2} {:>10}",
            tech.name(),
            tech.period_s(),
            tech.nominal_range_m(),
            heard.len(),
            errors.mean(),
            if tech.needs_infrastructure() {
                "beacons"
            } else {
                "none"
            }
        );
    }

    println!("\nend-to-end ACACIA session per technology (5 frames each):");
    println!(
        "{:>12} {:>12} {:>10} {:>9}",
        "technology", "mean total", "candidates", "accuracy"
    );
    for tech in ProximityTech::ALL {
        let report = Scenario::build(ScenarioConfig {
            frame_count: 5,
            tech,
            ..ScenarioConfig::e2e(Deployment::Acacia)
        })
        .run();
        let mean_cands = report.frames.iter().map(|f| f.candidates).sum::<usize>() as f64
            / report.frames.len().max(1) as f64;
        println!(
            "{:>12} {:>10.0}ms {:>7.1}/105 {:>8.0}%",
            tech.name(),
            report.mean_total_s() * 1e3,
            mean_cands,
            report.accuracy * 100.0
        );
    }
    println!("\n(the paper picks LTE-direct: best range, no extra infrastructure, and the");
    println!(" carrier already controls the namespace — §2, §8)");
}
