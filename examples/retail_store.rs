//! The paper's engaged-retail use case (§5.1), end to end: a customer
//! walks into a store, subscribes to her interests over LTE-direct, gets a
//! proximity match near the matching section, and the AR session begins —
//! compared across the three deployments.
//!
//! ```text
//! cargo run --release --example retail_store
//! ```

use acacia::device_manager::{DeviceManager, ServiceInfo};
use acacia::scenario::{Deployment, Scenario, ScenarioConfig, SERVICE};
use acacia_d2d::channel::RadioChannel;
use acacia_d2d::discovery::ProximityWorld;
use acacia_d2d::modem::Modem;
use acacia_geo::floor::FloorPlan;
use acacia_geo::pathloss::PathLossModel;

fn main() {
    // --- Act 1: the store and its LTE-direct landmarks. ---
    let floor = FloorPlan::retail_store();
    println!(
        "store floor: {} sections, {} subsections, {} LTE-direct landmarks, {} checkpoints",
        floor.sections.len(),
        floor.subsections.len(),
        floor.landmarks.len(),
        floor.checkpoints.len(),
    );
    println!("{}", floor.ascii_art());

    // --- Act 2: the customer subscribes to her interests. ---
    let channel = RadioChannel::new(PathLossModel::indoor_default(), 7);
    let world = ProximityWorld::from_floor(&floor, SERVICE, channel);
    let mut modem = Modem::new();
    let mut dm = DeviceManager::new();
    dm.register_app(
        &mut modem,
        ServiceInfo {
            service: SERVICE.into(),
            interests: vec!["L4".into()], // the laptop-section landmark
        },
    );
    // She walks toward the laptop section (checkpoint C12 is next to L4).
    let pos = floor.checkpoints[11].pos;
    let events = world.scan(&mut modem, pos, 0);
    for ev in &events {
        let (_, action) = dm.on_discovery(ev);
        println!(
            "discovery: \"{}\" from {} at {:.1} dBm{}",
            ev.announcement.expression,
            ev.publisher,
            ev.rx_power_dbm,
            if action.is_some() {
                "  -> requesting MEC connectivity"
            } else {
                ""
            }
        );
    }
    println!(
        "(modem saw {} broadcasts, filtered {} without waking the app)\n",
        modem.messages_seen, modem.messages_filtered
    );

    // --- Act 3: the AR session, across deployments. ---
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "deploy", "network", "compute", "match", "total", "accuracy"
    );
    for d in Deployment::ALL {
        let report = Scenario::build(ScenarioConfig {
            frame_count: 5,
            checkpoint: 11,
            ..ScenarioConfig::e2e(d)
        })
        .run();
        println!(
            "{:>8} {:>9.0}ms {:>9.0}ms {:>9.0}ms {:>9.0}ms {:>8.0}%",
            report.deployment.name(),
            report.mean_network_s() * 1e3,
            report.mean_compute_s() * 1e3,
            report.mean_match_s() * 1e3,
            report.mean_total_s() * 1e3,
            report.accuracy * 100.0
        );
    }
}
